//! Canonicalization of SQL text for plan-cache keying.
//!
//! Two query strings that differ only in keyword/identifier case,
//! whitespace, numeric-literal formatting (`1e2` vs `100`, `.25` vs
//! `0.25`), `!=` vs `<>`, or a trailing `;` describe the same query; the
//! serving layer should parse and plan it once. [`normalize`] maps every
//! member of such an equivalence class to one canonical string, used both
//! as the cache key *and* as the text that is actually parsed on a miss —
//! keying and planning from the same canonical form is what makes the
//! fold sound (there is no way for two spellings to share a key but
//! resolve to different plans).
//!
//! Semantics note: identifier case-folding means output column aliases
//! come back lowercased (`AS Rev` ≡ `AS rev`). Name resolution accepts
//! any casing via [`Schema::column_id_ci`](relation::Schema::column_id_ci).

use crate::error::Result;
use crate::sql::lexer::{tokenize, Token};

/// Canonicalize `text`: tokenize, fold case (keywords upper, identifiers
/// lower), reformat numeric literals through `f64` Display, re-quote
/// string literals, join with single spaces, and drop a trailing `;`.
///
/// Errors exactly when [`tokenize`] does, so unparseable garbage fails
/// here rather than producing a junk cache key.
///
/// # Example
///
/// ```
/// let a = engine::sql::normalize("Select  SUM(X) From t Where y <= 1e2;").unwrap();
/// let b = engine::sql::normalize("select sum(x) from t where y<=100").unwrap();
/// assert_eq!(a, b);
/// ```
pub fn normalize(text: &str) -> Result<String> {
    let mut tokens = tokenize(text)?;
    if matches!(tokens.last(), Some(Token::Symbol(";"))) {
        tokens.pop();
    }
    let mut out = String::with_capacity(text.len());
    for (i, tok) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match tok {
            // The lexer already upper-cases keywords.
            Token::Keyword(k) => out.push_str(k),
            Token::Ident(s) => out.push_str(&s.to_ascii_lowercase()),
            // f64 Display round-trips exactly and never uses scientific
            // notation, giving one spelling per value.
            Token::Number(v) => {
                use std::fmt::Write;
                let _ = write!(out, "{v}");
            }
            Token::Str(s) => {
                out.push('\'');
                for c in s.chars() {
                    if c == '\'' {
                        out.push('\'');
                    }
                    out.push(c);
                }
                out.push('\'');
            }
            Token::Symbol(s) => out.push_str(s),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_case_whitespace_and_literals() {
        let variants = [
            "SELECT state, SUM(income) FROM census WHERE age >= 25 GROUP BY state",
            "select STATE,sum( INCOME )from census where AGE>=25.0 group by state;",
            "select state , sum(income) \n from census where age >= 2.5e1 group by state",
        ];
        let keys: Vec<String> = variants.iter().map(|t| normalize(t).unwrap()).collect();
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[0], keys[2]);
        assert_eq!(
            keys[0],
            "SELECT state , SUM ( income ) FROM census WHERE age >= 25 GROUP BY state"
        );
    }

    #[test]
    fn ne_spellings_and_quotes_canonicalize() {
        assert_eq!(
            normalize("select count(*) from t where a != 'it''s'").unwrap(),
            normalize("SELECT COUNT(*) FROM t WHERE a <> 'it''s'").unwrap()
        );
    }

    #[test]
    fn distinct_queries_stay_distinct() {
        let a = normalize("select sum(x) from t where y = 1").unwrap();
        let b = normalize("select sum(x) from t where y = 2").unwrap();
        assert_ne!(a, b);
        // String literal *content* case is preserved — 'A' ≠ 'a'.
        let c = normalize("select count(*) from t where s = 'A'").unwrap();
        let d = normalize("select count(*) from t where s = 'a'").unwrap();
        assert_ne!(c, d);
    }

    #[test]
    fn tokenizer_errors_propagate() {
        assert!(normalize("select @nope").is_err());
        assert!(normalize("select 'open").is_err());
    }
}
