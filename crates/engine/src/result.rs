//! Query results: groups with aggregate values.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use relation::GroupKey;

/// The result of a group-by aggregate query: one row per group, with the
/// query's aggregate values in SELECT-list order. Rows are sorted by group
/// key so results are deterministic and directly comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Aggregate output labels, in SELECT-list order.
    pub aggregate_names: Vec<String>,
    rows: Vec<(GroupKey, Vec<f64>)>,
}

impl QueryResult {
    /// Assemble a result, sorting rows by key.
    pub fn new(aggregate_names: Vec<String>, mut rows: Vec<(GroupKey, Vec<f64>)>) -> Self {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        QueryResult {
            aggregate_names,
            rows,
        }
    }

    /// Assemble a result from rows the caller guarantees are already in
    /// ascending key order (e.g. emitted via [`GroupIndex::gids_by_key`]),
    /// skipping the sort.
    ///
    /// [`GroupIndex::gids_by_key`]: crate::GroupIndex::gids_by_key
    pub fn from_sorted(aggregate_names: Vec<String>, rows: Vec<(GroupKey, Vec<f64>)>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows must be strictly sorted by key"
        );
        QueryResult {
            aggregate_names,
            rows,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no groups.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, sorted by group key.
    pub fn rows(&self) -> &[(GroupKey, Vec<f64>)] {
        &self.rows
    }

    /// Iterate over `(key, values)`.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &[f64])> {
        self.rows.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Aggregate values for a specific group key.
    pub fn get(&self, key: &GroupKey) -> Option<&[f64]> {
        self.rows
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| self.rows[i].1.as_slice())
    }

    /// The single value of a scalar (no-group-by, one-aggregate) result.
    pub fn scalar(&self) -> Option<f64> {
        if self.rows.len() == 1 && self.rows[0].1.len() == 1 {
            Some(self.rows[0].1[0])
        } else {
            None
        }
    }

    /// Index rows by key for repeated lookups.
    pub fn by_key(&self) -> HashMap<&GroupKey, &[f64]> {
        self.rows.iter().map(|(k, v)| (k, v.as_slice())).collect()
    }

    /// Position of an aggregate by output name.
    pub fn aggregate_index(&self, name: &str) -> Option<usize> {
        self.aggregate_names.iter().position(|n| n == name)
    }

    /// The `k` groups with the largest (`descending = true`) or smallest
    /// values of the aggregate at `agg_index` — the top-k report shape
    /// OLAP front ends put on approximate answers. Ties break by group
    /// key for determinism.
    pub fn top_k(&self, agg_index: usize, k: usize, descending: bool) -> Vec<(GroupKey, f64)> {
        let mut rows: Vec<(GroupKey, f64)> = self
            .rows
            .iter()
            .map(|(key, vals)| (key.clone(), vals[agg_index]))
            .collect();
        rows.sort_by(|a, b| {
            let ord = a.1.total_cmp(&b.1);
            let ord = if descending { ord.reverse() } else { ord };
            ord.then_with(|| a.0.cmp(&b.0))
        });
        rows.truncate(k);
        rows
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "group | {}", self.aggregate_names.join(" | "))?;
        for (k, vals) in &self.rows {
            let vs: Vec<String> = vals.iter().map(|v| format!("{v:.4}")).collect();
            writeln!(f, "{k} | {}", vs.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Value;

    fn key(s: &str) -> GroupKey {
        GroupKey::new(vec![Value::str(s)])
    }

    #[test]
    fn rows_sorted_and_lookup() {
        let r = QueryResult::new(
            vec!["s".into()],
            vec![(key("b"), vec![2.0]), (key("a"), vec![1.0])],
        );
        assert_eq!(r.rows()[0].0, key("a"));
        assert_eq!(r.get(&key("b")), Some(&[2.0][..]));
        assert_eq!(r.get(&key("zz")), None);
        assert_eq!(r.group_count(), 2);
    }

    #[test]
    fn scalar_result() {
        let r = QueryResult::new(vec!["c".into()], vec![(GroupKey::empty(), vec![42.0])]);
        assert_eq!(r.scalar(), Some(42.0));
        let multi = QueryResult::new(
            vec!["c".into()],
            vec![(key("a"), vec![1.0]), (key("b"), vec![2.0])],
        );
        assert_eq!(multi.scalar(), None);
        let two_aggs = QueryResult::new(
            vec!["a".into(), "b".into()],
            vec![(GroupKey::empty(), vec![1.0, 2.0])],
        );
        assert_eq!(two_aggs.scalar(), None);
    }

    #[test]
    fn by_key_and_names() {
        let r = QueryResult::new(
            vec!["s".into(), "c".into()],
            vec![(key("a"), vec![1.0, 10.0])],
        );
        let m = r.by_key();
        assert_eq!(m[&key("a")], &[1.0, 10.0][..]);
        assert_eq!(r.aggregate_index("c"), Some(1));
        assert_eq!(r.aggregate_index("zz"), None);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let r = QueryResult::new(
            vec!["s".into()],
            vec![
                (key("a"), vec![10.0]),
                (key("b"), vec![30.0]),
                (key("c"), vec![20.0]),
                (key("d"), vec![30.0]),
            ],
        );
        let top = r.top_k(0, 2, true);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 30.0);
        assert_eq!(top[1].1, 30.0);
        // Deterministic tie-break by key: b before d.
        assert_eq!(top[0].0, key("b"));
        let bottom = r.top_k(0, 1, false);
        assert_eq!(bottom[0], (key("a"), 10.0));
        // k larger than the result is fine.
        assert_eq!(r.top_k(0, 99, true).len(), 4);
    }

    #[test]
    fn display_has_header() {
        let r = QueryResult::new(vec!["sum_q".into()], vec![(key("a"), vec![1.0])]);
        let s = r.to_string();
        assert!(s.contains("sum_q") && s.contains("⟨a⟩"));
    }
}
