//! Incremental maintenance (§6): the synopsis stays accurate as the
//! warehouse grows, *without re-reading the stored relation*.
//!
//! A warehouse starts with two quarters of sales, then receives monthly
//! batches — including a brand-new product line (a new group). After each
//! batch, queries keep working and the new group appears in answers, all
//! through the one-pass maintainers.
//!
//! Run: `cargo run --release --example warehouse_maintenance`

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::compare_results;
use engine::{AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{ColumnId, DataType, Expr, RelationBuilder, Value};

fn sales_rows(rng: &mut StdRng, products: &[&str], regions: &[&str], n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            let p = products[rng.gen_range(0..products.len())];
            let r = regions[rng.gen_range(0..regions.len())];
            let amount = rng.gen_range(10.0..500.0);
            vec![Value::str(p), Value::str(r), Value::from(amount)]
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2000);
    let regions = ["east", "west", "north", "south"];

    // Initial load: two established product lines.
    let mut b = RelationBuilder::new()
        .column("product", DataType::Str)
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for row in sales_rows(&mut rng, &["widgets", "gears"], &regions, 50_000) {
        b.push_row(&row).unwrap();
    }
    let initial = b.finish();
    let grouping = initial.schema().column_ids(&["product", "region"]).unwrap();
    let amount = initial.schema().column_id("amount").unwrap();

    let aqua = Aqua::build(
        initial,
        grouping,
        AquaConfig {
            space: 2_000,
            strategy: SamplingStrategy::Congress,
            seed: 11,
            ..AquaConfig::default()
        },
    )
    .expect("initial build");

    let by_product = GroupByQuery::new(
        vec![ColumnId(0)],
        vec![
            AggregateSpec::sum(Expr::col(amount), "revenue"),
            AggregateSpec::count("sales"),
        ],
    );

    println!(
        "initial warehouse: {} rows, synopsis {} tuples",
        aqua.table_rows(),
        aqua.synopsis_rows()
    );
    let report = compare_results(
        &aqua.exact(&by_product).unwrap(),
        &aqua.answer(&by_product).unwrap().result,
        0,
        100.0,
    );
    println!("revenue-by-product mean error: {:.2}%\n", report.l1());

    // Monthly batches; month 3 launches a new product line ("sprockets").
    for month in 1..=6 {
        let products: Vec<&str> = if month >= 3 {
            vec!["widgets", "gears", "sprockets"]
        } else {
            vec!["widgets", "gears"]
        };
        let batch = sales_rows(&mut rng, &products, &regions, 10_000);
        aqua.insert_batch(&batch).expect("insert batch");

        let approx = aqua.answer(&by_product).expect("answer after insert");
        let exact = aqua.exact(&by_product).unwrap();
        let report = compare_results(&exact, &approx.result, 0, 100.0);
        let sprockets = approx
            .result
            .get(&relation::GroupKey::new(vec![Value::str("sprockets")]))
            .map(|v| v[0]);
        println!(
            "month {month}: {} rows stored, synopsis {} tuples, mean err {:.2}%, sprockets revenue est: {}",
            aqua.table_rows(),
            aqua.synopsis_rows(),
            report.l1(),
            sprockets.map_or("(not launched)".into(), |v| format!("{v:.0}")),
        );
        assert_eq!(
            report.missing_groups, 0,
            "every product group must stay answerable after maintenance"
        );
    }
    println!(
        "\nThe synopsis tracked six months of insertions — including a brand-new\n\
         group — without ever rescanning the stored relation (§6)."
    );
}
