//! Property tests for the log-scale histogram: shard-merge exactness,
//! bucket-bound containment, and quantile monotonicity.

use obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2_000_000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging the snapshots of k independent recorders is exactly equal
    /// to one recorder that saw every observation, regardless of how the
    /// observations were sharded.
    #[test]
    fn merge_of_shards_equals_single_recorder(
        vals in values(),
        shards in 1usize..8,
    ) {
        let single = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::default();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    /// Every value lands in a bucket whose reported bounds contain it,
    /// and bucket upper bounds are strictly increasing (so cumulative
    /// walks are well ordered).
    #[test]
    fn values_fall_in_reported_bucket_bounds(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={} i={} lo={} hi={}", v, i, lo, hi);
        if i > 0 {
            prop_assert!(bucket_bounds(i - 1).1 < lo);
        }
    }

    /// Quantile estimates are monotone non-decreasing in q and bounded by
    /// the recorded extremes.
    #[test]
    fn quantiles_monotone_in_q(vals in values()) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        let grid = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &grid {
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile({}) = {} < quantile at lower q = {}", q, est, prev);
            prev = est;
        }
        if s.count > 0 {
            prop_assert!(s.quantile(1.0) == s.max);
            // The p50 estimate is a bucket upper bound at or above the
            // true median's bucket lower bound: never below min.
            prop_assert!(s.quantile(0.0) >= bucket_bounds(bucket_index(s.min)).0);
        }
    }

    /// Snapshot count always equals the bucket total, and the sum matches
    /// the serial sum of observations.
    #[test]
    fn snapshot_totals_are_exact(vals in values()) {
        let h = Histogram::new();
        let mut total = 0u64;
        for &v in &vals {
            h.record(v);
            total += v;
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        if obs::ENABLED {
            prop_assert_eq!(s.count, vals.len() as u64);
            prop_assert_eq!(s.sum, total);
        } else {
            prop_assert_eq!(s.count, 0);
        }
    }
}
