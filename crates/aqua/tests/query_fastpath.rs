//! End-to-end checks of the vectorized query-serving fast path: warm-cache
//! answers must match cold ones bit-for-bit, parallelism must not change
//! answers, and the per-synopsis cache must be invalidated by insertions
//! so answers never serve stale state.

use aqua::{Aqua, AquaConfig, RewriteChoice, SamplingStrategy, Warehouse};
use congress::MemStore;
use engine::{AggregateSpec, GroupByQuery};
use relation::{ColumnId, DataType, Expr, GroupKey, Predicate, Relation, RelationBuilder, Value};

fn sales(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .column("region", DataType::Str)
        .column("amount", DataType::Float);
    for i in 0..n {
        let region = match i % 10 {
            0 => "east",
            1 | 2 => "south",
            _ => "west",
        };
        b.push_row(&[Value::str(region), Value::from((i % 50) as f64)])
            .unwrap();
    }
    b.finish()
}

fn config(rewrite: RewriteChoice, parallelism: usize) -> AquaConfig {
    AquaConfig {
        space: 120,
        strategy: SamplingStrategy::Congress,
        rewrite,
        confidence: 0.9,
        seed: 11,
        parallelism,
    }
}

fn queries() -> Vec<GroupByQuery> {
    let amount = Expr::col(ColumnId(1));
    vec![
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(amount.clone(), "s"),
                AggregateSpec::count("c"),
                AggregateSpec::avg(amount.clone(), "a"),
            ],
        ),
        GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")])
            .with_predicate(Predicate::ge(ColumnId(1), 25.0)),
        GroupByQuery::new(vec![], vec![AggregateSpec::sum(amount.clone(), "s")]),
        // Group-only predicate: eligible for the cached-summary fast path,
        // which must agree bit-for-bit with the scan path.
        GroupByQuery::new(
            vec![ColumnId(0)],
            vec![
                AggregateSpec::sum(amount.clone(), "s"),
                AggregateSpec::avg(amount, "a"),
                AggregateSpec::count("c"),
            ],
        )
        .with_predicate(Predicate::eq(ColumnId(0), Value::str("west")).not().not()),
    ]
}

/// Assert two answers carry bit-identical error bounds (same groups, same
/// per-aggregate half-widths).
fn assert_bounds_identical(a: &aqua::ApproximateAnswer, b: &aqua::ApproximateAnswer, ctx: &str) {
    assert_eq!(a.bounds.len(), b.bounds.len(), "{ctx}: bound group count");
    for (ga, gb) in a.bounds.iter().zip(&b.bounds) {
        assert_eq!(ga.key, gb.key, "{ctx}: bound key order");
        assert_eq!(ga.bounds.len(), gb.bounds.len(), "{ctx}: agg arity");
        for (ba, bb) in ga.bounds.iter().zip(&gb.bounds) {
            let wa = ba.as_ref().map(|e| e.half_width.to_bits());
            let wb = bb.as_ref().map(|e| e.half_width.to_bits());
            assert_eq!(wa, wb, "{ctx}: half-width for {:?}", ga.key);
        }
    }
}

#[test]
fn warm_answers_identical_to_cold_for_every_rewrite() {
    let t = sales(3000);
    for rewrite in RewriteChoice::all() {
        let aqua = Aqua::build(t.clone(), vec![ColumnId(0)], config(rewrite, 0)).unwrap();
        for q in queries() {
            // First answer populates the synopsis cache; repeats hit it.
            let cold = aqua.answer(&q).unwrap();
            for _ in 0..3 {
                let warm = aqua.answer(&q).unwrap();
                assert_eq!(cold.result, warm.result, "{}", rewrite.name());
                assert_bounds_identical(&cold, &warm, rewrite.name());
            }
        }
    }
}

#[test]
fn parallelism_does_not_change_answers() {
    let t = sales(3000);
    for rewrite in RewriteChoice::all() {
        let serial = Aqua::build(t.clone(), vec![ColumnId(0)], config(rewrite, 1)).unwrap();
        let parallel = Aqua::build(t.clone(), vec![ColumnId(0)], config(rewrite, 8)).unwrap();
        for q in queries() {
            let a = serial.answer(&q).unwrap();
            let b = parallel.answer(&q).unwrap();
            assert_eq!(a.result, b.result, "{}", rewrite.name());
            assert_bounds_identical(&a, &b, rewrite.name());
        }
    }
}

#[test]
fn cached_answers_reflect_inserts() {
    // answer → insert → answer: the second answer must see the new rows,
    // i.e. insertion invalidated the memoized indexes/layouts.
    let t = sales(2000);
    let aqua = Aqua::build(
        t,
        vec![ColumnId(0)],
        config(RewriteChoice::KeyNormalized, 0),
    )
    .unwrap();
    let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
    // Warm the cache thoroughly.
    let before = aqua.answer(&q).unwrap();
    aqua.answer(&q).unwrap();
    let north = GroupKey::new(vec![Value::str("north")]);
    assert!(before.result.get(&north).is_none());

    let rows: Vec<Vec<Value>> = (0..120)
        .map(|i| vec![Value::str("north"), Value::from(i as f64)])
        .collect();
    aqua.insert_batch(&rows).unwrap();

    let after = aqua.answer(&q).unwrap();
    assert!(
        after.result.get(&north).is_some(),
        "inserted group must appear after cache invalidation"
    );
}

#[test]
fn warehouse_logged_inserts_invalidate_the_cache() {
    // The same contract through the durable warehouse path: answer,
    // insert_logged, answer again — the second answer reflects the new
    // rows even though the first answer warmed the synopsis cache.
    let store = MemStore::new();
    let w = Warehouse::new();
    let t = sales(1500);
    let grouping = t.schema().column_ids(&["region"]).unwrap();
    w.register("sales", t, grouping, config(RewriteChoice::Integrated, 0))
        .unwrap();
    w.save_all(&store).unwrap();

    let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
    let before = w.answer("sales", &q).unwrap();
    w.answer("sales", &q).unwrap(); // warm
    let north = GroupKey::new(vec![Value::str("north")]);
    assert!(before.result.get(&north).is_none());

    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| vec![Value::str("north"), Value::from(i as f64)])
        .collect();
    w.insert_logged(&store, "sales", &rows).unwrap();

    let after = w.answer("sales", &q).unwrap();
    assert!(
        after.result.get(&north).is_some(),
        "logged insert must invalidate the query cache"
    );
    // The overall count estimate must have grown.
    let total_before: f64 = before.result.rows().iter().map(|(_, v)| v[0]).sum();
    let total_after: f64 = after.result.rows().iter().map(|(_, v)| v[0]).sum();
    assert!(
        total_after > total_before,
        "{total_after} vs {total_before}"
    );
}
