//! Normalized rewriting (paper Fig 9): the sample relation stores no
//! ScaleFactor; instead an auxiliary relation `AuxRel(grouping columns...,
//! sf)` holds one row per stratum, and every query joins SampRel with
//! AuxRel on the grouping attributes.

use relation::{Column, ColumnId, DataType, Field, Relation, RelationBuilder, Value};

use crate::cache::{ExecOptions, StratumLayout};
use crate::error::{EngineError, Result};
use crate::join::hash_join_unique;
use crate::query::GroupByQuery;
use crate::result::QueryResult;
use crate::rewrite::{aggregate_weighted_opts, SamplePlan};
use crate::stratified::StratifiedInput;

/// The Normalized physical layout: plain sample + grouping-keyed AuxRel.
#[derive(Debug, Clone)]
pub struct Normalized {
    rel: Relation,
    aux: Relation,
    /// Grouping columns within `rel` (probe side of the join).
    probe_cols: Vec<ColumnId>,
    /// Matching key columns within `aux` (build side).
    build_cols: Vec<ColumnId>,
    /// Stratum id per sample row — AuxRel's row order matches stratum ids,
    /// so this lets a cached [`StratumLayout`] replace the per-query join.
    stratum_of_row: Vec<u32>,
}

impl Normalized {
    /// Materialize the layout from a stratified sample.
    pub fn build(input: &StratifiedInput) -> Result<Normalized> {
        input.validate()?;

        // AuxRel: one row per stratum — the stratum's grouping-column
        // values followed by its ScaleFactor.
        let mut b = RelationBuilder::new();
        for &c in &input.grouping_columns {
            let f = input.rows.schema().field(c)?;
            b = b.column(f.name.clone(), f.data_type);
        }
        b = b.column("__sf", DataType::Float);
        for (key, &sf) in input.strata_keys.iter().zip(&input.scale_factors) {
            let mut row: Vec<Value> = key.values().to_vec();
            row.push(Value::from(sf));
            b.push_row(&row)?;
        }
        let aux = b.finish();
        let build_cols: Vec<ColumnId> = (0..input.grouping_columns.len()).map(ColumnId).collect();

        Ok(Normalized {
            rel: input.rows.clone(),
            aux,
            probe_cols: input.grouping_columns.clone(),
            build_cols,
            stratum_of_row: input.stratum_of_row.clone(),
        })
    }

    /// The auxiliary (stratum → ScaleFactor) relation.
    pub fn aux_relation(&self) -> &Relation {
        &self.aux
    }

    /// Join SampRel to AuxRel and return the per-row ScaleFactor.
    fn join_scale_factors(&self) -> Result<Vec<f64>> {
        let matches = hash_join_unique(&self.rel, &self.probe_cols, &self.aux, &self.build_cols)?;
        let sf_col = self.aux.schema().column_id("__sf")?;
        let sfs = self.aux.column(sf_col).as_float().expect("__sf is Float");
        matches
            .into_iter()
            .map(|m| {
                m.map(|r| sfs[r]).ok_or_else(|| {
                    EngineError::InvalidStratifiedInput(
                        "sample tuple's group missing from AuxRel".into(),
                    )
                })
            })
            .collect()
    }
}

impl SamplePlan for Normalized {
    fn name(&self) -> &'static str {
        "Normalized"
    }

    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult> {
        // Cold path: the join is part of the rewritten query (Fig 9), so it
        // is paid on every execution — that cost is exactly what Expt 3/4
        // measure. Warm path: the join's output depends only on synopsis
        // state, so the cached stratum layout expands AuxRel's SF column to
        // the same per-row weights (identical f64s) with one run scan.
        match opts.cache {
            Some(cache) => {
                let layout = cache.layout_for(|| {
                    StratumLayout::build(&self.stratum_of_row, self.aux.row_count())
                });
                let weights = cache.weights_for(|| {
                    let sf_col = self.aux.schema().column_id("__sf")?;
                    let sfs = self.aux.column(sf_col).as_float().expect("__sf is Float");
                    Ok(layout.expand(sfs))
                })?;
                aggregate_weighted_opts(&self.rel, &weights, query, opts)
            }
            None => {
                let weights = self.join_scale_factors()?;
                aggregate_weighted_opts(&self.rel, &weights, query, opts)
            }
        }
    }

    fn sample_relation(&self) -> &Relation {
        &self.rel
    }

    fn storage_bytes(&self) -> usize {
        self.rel.approx_bytes() + self.aux.approx_bytes()
    }

    fn rate_change_cost(&self, stratum: u32) -> usize {
        // One AuxRel row holds the stratum's SF.
        usize::from((stratum as usize) < self.aux.row_count())
    }
}

/// Shared helper for [`super::KeyNormalized`]: build an AuxRel of
/// `(gid, sf)` pairs.
pub(crate) fn build_gid_aux(scale_factors: &[f64]) -> Relation {
    let gids: Vec<i64> = (0..scale_factors.len() as i64).collect();
    let schema = relation::Schema::new(vec![
        Field::new("__gid", DataType::Int),
        Field::new("__sf", DataType::Float),
    ])
    .expect("static schema");
    Relation::new(
        schema,
        vec![Column::Int(gids), Column::Float(scale_factors.to_vec())],
    )
    .expect("columns match schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::sample;
    use relation::{Expr, GroupKey};

    #[test]
    fn aux_relation_one_row_per_stratum() {
        let p = Normalized::build(&sample()).unwrap();
        assert_eq!(p.aux_relation().row_count(), 3);
        assert_eq!(p.aux_relation().schema().width(), 3); // a, b, __sf
    }

    #[test]
    fn join_recovers_scale_factors() {
        let p = Normalized::build(&sample()).unwrap();
        assert_eq!(
            p.join_scale_factors().unwrap(),
            vec![2.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn storage_includes_aux() {
        let p = Normalized::build(&sample()).unwrap();
        assert!(p.storage_bytes() > p.sample_relation().approx_bytes());
    }

    #[test]
    fn executes_scaled_query() {
        let p = Normalized::build(&sample()).unwrap();
        let q = GroupByQuery::new(
            vec![],
            vec![AggregateSpec::sum(Expr::col(ColumnId(2)), "s")],
        );
        let r = p.execute(&q).unwrap();
        // (1+3)·2 + 10·2 + (100+200)·1 = 328
        assert_eq!(r.get(&GroupKey::empty()), Some(&[328.0][..]));
    }

    #[test]
    fn missing_aux_row_detected() {
        let mut s = sample();
        // Remove a stratum key/SF pair while keeping its rows: corrupt.
        s.strata_keys.pop();
        s.scale_factors.pop();
        // stratum_of_row still references stratum 2 → validate() catches it
        assert!(Normalized::build(&s).is_err());
    }
}
