//! Typed columnar storage.
//!
//! Each column is a dense, null-free vector. Strings are dictionary-encoded:
//! the column stores `u32` codes into a per-column dictionary of interned
//! strings. Grouping and equality predicates on string columns therefore
//! compare integers, which matters at the 6M-row top end of the paper's
//! Table 1 parameter range.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::error::{RelationError, Result};
use crate::value::{Value, F64};

/// A dictionary-encoded string column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrColumn {
    codes: Vec<u32>,
    dict: Vec<Arc<str>>,
    #[serde(skip)]
    interner: HashMap<Arc<str>, u32>,
}

impl StrColumn {
    /// Empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct strings seen.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Append a string, interning it.
    pub fn push(&mut self, s: Arc<str>) {
        let code = match self.interner.get(&s) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(s.clone());
                self.interner.insert(s, c);
                c
            }
        };
        self.codes.push(code);
    }

    /// The dictionary code at `row`.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The string at `row`.
    pub fn get(&self, row: usize) -> &Arc<str> {
        &self.dict[self.codes[row] as usize]
    }

    /// Decode a dictionary code.
    pub fn decode(&self, code: u32) -> &Arc<str> {
        &self.dict[code as usize]
    }

    /// The dictionary, indexed by code. Predicates evaluate order
    /// comparisons once per entry here rather than once per row.
    pub fn dict(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// Code of `s` if it has been seen.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        // The interner map is not serialized; fall back to a scan when it is
        // empty but the dictionary is not (i.e. after deserialization).
        if self.interner.is_empty() && !self.dict.is_empty() {
            return self.dict.iter().position(|d| &**d == s).map(|i| i as u32);
        }
        self.interner.get(s).copied()
    }

    /// Gather rows by index into a fresh column (dictionary rebuilt compactly).
    pub fn gather(&self, rows: &[usize]) -> StrColumn {
        let mut out = StrColumn::new();
        out.codes.reserve(rows.len());
        for &r in rows {
            out.push(self.get(r).clone());
        }
        out
    }
}

/// Physical storage for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// Dense `i64` vector.
    Int(Vec<i64>),
    /// Dense `f64` vector.
    Float(Vec<f64>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
    /// Dense day-number vector.
    Date(Vec<i32>),
}

impl Column {
    /// Empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(StrColumn::new()),
            DataType::Date => Column::Date(Vec::new()),
        }
    }

    /// Empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(StrColumn::new()),
            DataType::Date => Column::Date(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Date(_) => DataType::Date,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Date(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value; errors on type mismatch.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x.get()),
            // Int widens into a Float column losslessly for small ints; this
            // is a deliberate convenience for hand-built test relations.
            (Column::Float(v), Value::Int(x)) => v.push(x as f64),
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (Column::Date(v), Value::Date(d)) => v.push(d),
            (col, value) => {
                return Err(RelationError::TypeMismatch {
                    column: String::new(),
                    expected: col.data_type(),
                    actual: value.data_type(),
                })
            }
        }
        Ok(())
    }

    /// The value at `row` (clones strings cheaply via `Arc`).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(F64::new(v[row])),
            Column::Str(v) => Value::Str(v.get(row).clone()),
            Column::Date(v) => Value::Date(v[row]),
        }
    }

    /// Numeric view of the value at `row` (dates as day numbers).
    pub fn value_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v[row] as f64),
            Column::Float(v) => Some(v[row]),
            Column::Date(v) => Some(v[row] as f64),
            Column::Str(_) => None,
        }
    }

    /// Typed access to an int column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access to a float column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access to a string column.
    pub fn as_str(&self) -> Option<&StrColumn> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access to a date column.
    pub fn as_date(&self) -> Option<&[i32]> {
        match self {
            Column::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Append all values of `other` (same type) onto `self`.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Date(a), Column::Date(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => {
                for r in 0..b.len() {
                    a.push(b.get(r).clone());
                }
            }
            (a, b) => {
                return Err(RelationError::TypeMismatch {
                    column: String::new(),
                    expected: a.data_type(),
                    actual: b.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Gather rows by index into a new column.
    pub fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r]).collect()),
            Column::Str(v) => Column::Str(v.gather(rows)),
            Column::Date(v) => Column::Date(rows.iter().map(|&r| v[r]).collect()),
        }
    }

    /// A stable `u64` grouping code for the value at `row`.
    ///
    /// Codes are only comparable within the same column: ints and dates use
    /// their numeric value (sign-extended), floats their bit pattern, and
    /// strings their dictionary code. The group-by executor packs these into
    /// composite keys instead of materializing `Value`s per row.
    pub fn group_code(&self, row: usize) -> u64 {
        match self {
            Column::Int(v) => v[row] as u64,
            Column::Float(v) => F64::new(v[row]).get().to_bits(),
            Column::Str(v) => v.code(row) as u64,
            Column::Date(v) => v[row] as i64 as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_interns() {
        let mut c = StrColumn::new();
        c.push("a".into());
        c.push("b".into());
        c.push("a".into());
        assert_eq!(c.len(), 3);
        assert_eq!(c.dict_len(), 2);
        assert_eq!(c.code(0), c.code(2));
        assert_ne!(c.code(0), c.code(1));
        assert_eq!(&**c.get(2), "a");
        assert_eq!(c.lookup("b"), Some(1));
        assert_eq!(c.lookup("zz"), None);
    }

    #[test]
    fn push_type_checks() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        assert!(c.push(Value::str("x")).is_err());
        assert_eq!(c.len(), 1);

        // Int widens into Float columns.
        let mut f = Column::empty(DataType::Float);
        f.push(Value::Int(2)).unwrap();
        f.push(Value::from(0.5)).unwrap();
        assert_eq!(f.as_float().unwrap(), &[2.0, 0.5]);
    }

    #[test]
    fn value_round_trip() {
        let mut c = Column::empty(DataType::Date);
        c.push(Value::Date(42)).unwrap();
        assert_eq!(c.value(0), Value::Date(42));
        assert_eq!(c.value_f64(0), Some(42.0));

        let mut s = Column::empty(DataType::Str);
        s.push(Value::str("hi")).unwrap();
        assert_eq!(s.value(0), Value::str("hi"));
        assert_eq!(s.value_f64(0), None);
    }

    #[test]
    fn gather_reorders_and_repeats() {
        let mut c = Column::empty(DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i)).unwrap();
        }
        let g = c.gather(&[4, 0, 0, 2]);
        assert_eq!(g.as_int().unwrap(), &[4, 0, 0, 2]);
    }

    #[test]
    fn gather_str_rebuilds_dict() {
        let mut c = StrColumn::new();
        for s in ["x", "y", "z", "y"] {
            c.push(s.into());
        }
        let g = c.gather(&[3, 1]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.dict_len(), 1); // only "y" survives
        assert_eq!(&**g.get(0), "y");
    }

    #[test]
    fn group_codes_distinguish_values() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::from(1.5)).unwrap();
        c.push(Value::from(2.5)).unwrap();
        c.push(Value::from(1.5)).unwrap();
        assert_eq!(c.group_code(0), c.group_code(2));
        assert_ne!(c.group_code(0), c.group_code(1));
    }

    #[test]
    fn lookup_after_serde_round_trip_uses_scan() {
        let mut c = StrColumn::new();
        c.push("p".into());
        c.push("q".into());
        // Simulate deserialization: interner skipped.
        let mut c2 = c.clone();
        c2.interner.clear();
        assert_eq!(c2.lookup("q"), Some(1));
        assert_eq!(c2.lookup("nope"), None);
    }
}
