//! Offline criterion facade.
//!
//! Keeps the criterion API shape used by this workspace's benches
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `throughput` /
//! `bench_with_input`) and performs *real* wall-clock measurement with a
//! min/mean/max text report — so relative comparisons such as the
//! parallel-vs-sequential construction speedup are still meaningful —
//! but does none of criterion's statistical analysis or plotting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}
impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}
impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`: one untimed warmup call, then `sample_size` timed
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(
    full_id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_id:<40} (no samples — closure never called iter)");
        return;
    }
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let mut line = format!(
        "{full_id:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Criterion-compat no-op (CLI args are ignored by this facade).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_benchmark_id().id, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report is already printed incrementally).
    pub fn finish(self) {}
}

/// Define a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut ran = 0u32;
        run_one("smoke", 3, Some(Throughput::Elements(10)), &mut |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 1 warmup + 3 timed.
        assert_eq!(ran, 4);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
