//! §5.2 / §7.3.3 ablation: the execution-time vs maintenance-cost
//! trade-off between the rewrite families.
//!
//! Run: `cargo run -p bench --release --bin tradeoff [-- --quick]`
//!
//! The paper's conclusion: Integrated / Nested-integrated win on query
//! time but "incur higher maintenance costs (which we do not study here)";
//! Key-normalized is the choice only for high-frequency-update warehouses.
//! This harness quantifies both sides: per-query latency AND the number of
//! stored cells rewritten when one stratum's sampling rate changes (e.g.
//! after the §6 maintainers adjust a group's quota).

use std::time::{Duration, Instant};

use aqua::{RewriteChoice, SamplingStrategy};
use bench::harness::{build_plan, ExperimentSetup};
use bench::report::{secs, Table};
use tpcd::GeneratorConfig;

fn time_runs(mut f: impl FnMut()) -> Duration {
    let mut times = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times[1..].iter().sum::<Duration>() / 4
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let setup = ExperimentSetup::new(GeneratorConfig {
        table_size: if quick { 100_000 } else { 1_000_000 },
        num_groups: 1000,
        group_skew: 0.86,
        agg_skew: 0.86,
        seed: 20000518,
    });
    let strata = setup.census.group_count() as u32;

    let mut table = Table::new(
        "§5.2 trade-off: query latency vs tuples touched per rate change \
         [expect: Integrated-family fast queries / expensive maintenance; Normalized-family the reverse]",
        &[
            "technique",
            "Qg2 time (s)",
            "cells touched, all strata",
            "worst single stratum",
            "storage (KiB)",
        ],
    );
    for rewrite in RewriteChoice::all() {
        let plan = build_plan(&setup, SamplingStrategy::Congress, rewrite, 0.07, 8_000);
        let d = time_runs(|| {
            let _ = plan.execute(&setup.qg2).unwrap();
        });
        // Maintenance side: a full rate re-allocation (as after many
        // insertions) touches Σ_g cost(g); a single group change touches
        // cost(g) for that group.
        let costs: Vec<usize> = (0..strata).map(|s| plan.rate_change_cost(s)).collect();
        let total: usize = costs.iter().sum();
        let worst = costs.iter().copied().max().unwrap_or(0);
        table.row(&[
            rewrite.name().to_string(),
            secs(d),
            total.to_string(),
            worst.to_string(),
            (plan.storage_bytes() / 1024).to_string(),
        ]);
        eprintln!("  {}: done", rewrite.name());
    }
    println!("{table}");
}
