//! Offline serde facade.
//!
//! Exposes `Serialize` / `Deserialize` as blanket-implemented marker
//! traits and re-exports the no-op derives from `serde_derive`. This keeps
//! every `#[derive(Serialize, Deserialize)]` and `T: Serialize` bound in
//! the workspace compiling without any real serialization framework —
//! durable persistence is handled by `congress::snapshot`'s hand-rolled
//! binary format instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait satisfied by every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, blanket-implemented like the real one.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
