#![warn(missing_docs)]

//! Concurrent HTTP/JSON serving front end for the Aqua middleware.
//!
//! The serving story so far ends at a Rust API ([`aqua::Aqua::answer_sql`]);
//! this crate puts a network in front of it without taking on an async
//! runtime the build environment doesn't have. The shape is a classic
//! reactor: **one epoll thread owns every socket** (accept, read, parse,
//! write — nothing blocking), and a small **worker pool owns the query
//! work** (the only part that can take milliseconds). The two sides meet
//! at a bounded job queue going one way and a completion list + `eventfd`
//! wakeup coming back.
//!
//! Three serving behaviors live here rather than in the middleware:
//!
//! - **Coalescing**: identical in-flight queries (same relation, same
//!   *normalized* SQL — the plan cache's key) are answered once; every
//!   waiting connection gets a copy of the one result. A thundering herd
//!   of dashboards refreshing the same panel costs one execution.
//! - **Admission control**: the job queue is bounded; a `/query` arriving
//!   when it is full is answered `503` immediately instead of queueing
//!   behind work the client will have timed out on anyway. Coalesced
//!   followers ride the existing job and are never shed.
//! - **Protocol hygiene**: HTTP/1.1 keep-alive, pipelining (one query in
//!   flight per connection), malformed requests answered `4xx` and closed.
//!
//! Endpoints: `POST /query` (JSON `{"sql": ..., "relation": ...}` or a
//! raw SQL body), `GET /stats` (JSON metrics snapshot, server + backend
//! merged), `GET /metrics` (Prometheus text), `GET /healthz`.

pub mod backend;
pub mod http;
pub mod json;
pub mod sys;

pub use backend::{BackendError, QueryBackend};

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::{io, thread};

use sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8600` (port 0 picks an ephemeral
    /// port — read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Query worker threads; 0 means one per available core.
    pub workers: usize,
    /// Jobs the queue holds before `/query` starts answering 503.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 64,
        }
    }
}

/// One queued query execution.
struct Job {
    key: QueryKey,
}

/// Coalescing key: target relation + normalized SQL. Unnormalizable SQL
/// keys on its raw text — such queries still coalesce when byte-identical
/// and all get the same 400.
type QueryKey = (Option<String>, String);

/// A connection waiting on a query result.
struct Waiter {
    fd: i32,
    generation: u64,
    keep_alive: bool,
}

/// A rendered response headed back to the reactor.
struct Completion {
    fd: i32,
    generation: u64,
    bytes: Vec<u8>,
    close_after: bool,
}

/// State shared between the reactor, the workers, and [`Server`].
struct Shared {
    backend: Arc<dyn QueryBackend>,
    registry: Arc<obs::Registry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_depth: usize,
    /// Singleflight table: key → connections waiting on the in-flight
    /// execution. Presence of a key means a job is queued or running.
    inflight: Mutex<HashMap<QueryKey, Vec<Waiter>>>,
    completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor when completions are pushed or shutdown begins.
    wakeup: EventFd,
    shutdown: AtomicBool,
    /// Serving-critical signals, always-on even under `obs-off` (the
    /// concurrency suite synchronizes on them, and operators need them
    /// regardless of the metrics feature) — same pattern as aqua's cache
    /// counters. Folded into every snapshot via `set_counter`.
    shed: AtomicU64,
    coalesced: AtomicU64,
}

impl Shared {
    fn count(&self, name: &str, labels: &[(&str, &str)]) {
        if obs::ENABLED {
            self.registry.counter(&obs::label(name, labels)).inc();
        }
    }

    /// The server-side snapshot: registry metrics plus the always-on
    /// shed/coalesce counters and the live queue depth.
    fn server_snapshot(&self) -> obs::Snapshot {
        let mut snap = self.registry.snapshot();
        snap.set_counter("server_shed_total", self.shed.load(Ordering::Relaxed));
        snap.set_counter(
            "server_coalesced_total",
            self.coalesced.load(Ordering::Relaxed),
        );
        snap.set_gauge(
            "server_queue_depth",
            self.queue.lock().unwrap().len() as i64,
        );
        snap
    }
}

/// A running server: reactor + workers bound to a local address. Dropping
/// it (or calling [`Server::shutdown`]) stops every thread and closes
/// every connection.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `backend` per `config`.
    pub fn bind(config: ServerConfig, backend: Arc<dyn QueryBackend>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            backend,
            registry: Arc::new(obs::Registry::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            inflight: Mutex::new(HashMap::new()),
            completions: Mutex::new(Vec::new()),
            wakeup: EventFd::new()?,
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        });

        let worker_count = if config.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("query-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let reactor_shared = Arc::clone(&shared);
        let reactor = thread::Builder::new()
            .name("reactor".into())
            .spawn(move || {
                if let Err(e) = reactor_loop(listener, &reactor_shared) {
                    // Nothing to do but note it; bind errors already
                    // surfaced synchronously.
                    eprintln!("server reactor exited: {e}");
                }
            })?;

        Ok(Server {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-side metrics registry (per-endpoint request counters,
    /// connection counts) — also merged into `/stats` and `/metrics`
    /// responses.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.shared.registry
    }

    /// Snapshot of the server-side metrics: the registry plus the
    /// always-on shed/coalesce counters and live queue depth, which are
    /// meaningful on both obs feature legs.
    pub fn snapshot(&self) -> obs::Snapshot {
        self.shared.server_snapshot()
    }

    /// Stop accepting, close every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify();
        self.shared.queue_cv.notify_all();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };
        let (relation, sql) = (&job.key.0, &job.key.1);
        let (status, body) = match shared.backend.answer_sql(relation.as_deref(), sql) {
            Ok(served) => (200, json::render_answer(&served)),
            Err(e) => (e.status(), json::render_error(e.message())),
        };
        let waiters = shared
            .inflight
            .lock()
            .unwrap()
            .remove(&job.key)
            .unwrap_or_default();
        let status_str = status.to_string();
        {
            let mut completions = shared.completions.lock().unwrap();
            for w in &waiters {
                completions.push(Completion {
                    fd: w.fd,
                    generation: w.generation,
                    bytes: http::response(
                        status,
                        "application/json",
                        body.as_bytes(),
                        w.keep_alive,
                    ),
                    close_after: !w.keep_alive,
                });
            }
        }
        if obs::ENABLED {
            for _ in &waiters {
                shared.count(
                    "server_requests_total",
                    &[("endpoint", "/query"), ("status", &status_str)],
                );
            }
        }
        shared.wakeup.notify();
    }
}

// ---------------------------------------------------------------------
// Reactor side
// ---------------------------------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

struct Conn {
    stream: TcpStream,
    generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A `/query` is in flight; parsing is paused so responses stay in
    /// request order.
    busy: bool,
    close_after_flush: bool,
    /// Events currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

struct Reactor<'a> {
    epoll: Epoll,
    listener: TcpListener,
    shared: &'a Shared,
    conns: HashMap<i32, Conn>,
    next_generation: u64,
}

fn reactor_loop(listener: TcpListener, shared: &Shared) -> io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(shared.wakeup.raw_fd(), EPOLLIN, TOKEN_WAKEUP)?;
    let mut r = Reactor {
        epoll,
        listener,
        shared,
        conns: HashMap::new(),
        next_generation: 0,
    };
    let mut events = [EpollEvent { events: 0, data: 0 }; 256];
    loop {
        let n = r.epoll.wait(&mut events, -1)?;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_LISTENER => r.accept_ready(),
                TOKEN_WAKEUP => {
                    shared.wakeup.drain();
                    r.drain_completions();
                }
                fd => {
                    let fd = fd as i32;
                    if bits & (EPOLLERR | EPOLLHUP) != 0 {
                        r.close(fd);
                        continue;
                    }
                    if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                        r.readable(fd);
                    }
                    if bits & EPOLLOUT != 0 {
                        r.writable(fd);
                    }
                }
            }
        }
    }
}

impl Reactor<'_> {
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let generation = self.next_generation;
                    self.next_generation += 1;
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(fd, interest, fd as u64).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        fd,
                        Conn {
                            stream,
                            generation,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            busy: false,
                            close_after_flush: false,
                            interest,
                        },
                    );
                    if obs::ENABLED {
                        self.shared
                            .registry
                            .counter("server_connections_total")
                            .inc();
                        self.shared
                            .registry
                            .gauge("server_connections_active")
                            .add(1);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn close(&mut self, fd: i32) {
        if let Some(conn) = self.conns.remove(&fd) {
            let _ = self.epoll.delete(fd);
            drop(conn); // closes the socket
            if obs::ENABLED {
                self.shared
                    .registry
                    .gauge("server_connections_active")
                    .add(-1);
            }
        }
    }

    fn readable(&mut self, fd: i32) {
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(&fd) else {
                return;
            };
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        should_close = true;
                        break;
                    }
                    Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
        }
        if should_close {
            self.close(fd);
            return;
        }
        self.process_requests(fd);
    }

    /// Parse and dispatch as many complete requests as the ordering rule
    /// allows (stop while a query response is pending).
    fn process_requests(&mut self, fd: i32) {
        loop {
            let Some(conn) = self.conns.get_mut(&fd) else {
                return;
            };
            if conn.busy || conn.close_after_flush || conn.read_buf.is_empty() {
                break;
            }
            match http::parse(&conn.read_buf) {
                http::Parse::Complete { request, consumed } => {
                    conn.read_buf.drain(..consumed);
                    self.dispatch(fd, request);
                }
                http::Parse::Partial => break,
                http::Parse::Error { status, reason } => {
                    let body = json::render_error(reason);
                    let resp = http::response(status, "application/json", body.as_bytes(), false);
                    conn.read_buf.clear();
                    conn.close_after_flush = true;
                    self.shared.count(
                        "server_requests_total",
                        &[("endpoint", "malformed"), ("status", &status.to_string())],
                    );
                    self.enqueue_write(fd, &resp);
                    break;
                }
            }
        }
        self.flush(fd);
    }

    fn dispatch(&mut self, fd: i32, request: http::Request) {
        let endpoint = request.path.clone();
        let (status, content_type, body) = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => (200, "text/plain", "ok\n".to_string()),
            ("GET", "/stats") => {
                let mut snap = self.shared.backend.stats();
                snap.merge(&self.shared.server_snapshot());
                (200, "application/json", snap.to_json())
            }
            ("GET", "/metrics") => {
                let mut snap = self.shared.backend.stats();
                snap.merge(&self.shared.server_snapshot());
                (200, "text/plain; version=0.0.4", snap.to_prometheus())
            }
            ("POST", "/query") => {
                self.dispatch_query(fd, &request);
                return;
            }
            ("GET", "/query") => (
                405,
                "application/json",
                json::render_error("use POST for /query"),
            ),
            _ => (
                404,
                "application/json",
                json::render_error("no such endpoint"),
            ),
        };
        self.shared.count(
            "server_requests_total",
            &[("endpoint", &endpoint), ("status", &status.to_string())],
        );
        let resp = http::response(status, content_type, body.as_bytes(), request.keep_alive);
        if !request.keep_alive {
            if let Some(conn) = self.conns.get_mut(&fd) {
                conn.close_after_flush = true;
            }
        }
        self.enqueue_write(fd, &resp);
    }

    /// `/query`: extract SQL, coalesce with identical in-flight work or
    /// enqueue a job, shedding when the queue is full.
    fn dispatch_query(&mut self, fd: i32, request: &http::Request) {
        let parsed = parse_query_body(&request.body);
        let (relation, sql) = match parsed {
            Ok(rs) => rs,
            Err(msg) => {
                self.shared.count(
                    "server_requests_total",
                    &[("endpoint", "/query"), ("status", "400")],
                );
                let body = json::render_error(&msg);
                let resp =
                    http::response(400, "application/json", body.as_bytes(), request.keep_alive);
                self.enqueue_write(fd, &resp);
                return;
            }
        };
        // Coalescing key = the plan cache's key, so "identical" here means
        // identical after case/whitespace/literal normalization.
        let key: QueryKey = (relation, engine::sql::normalize(&sql).unwrap_or(sql));
        let generation = match self.conns.get(&fd) {
            Some(c) => c.generation,
            None => return,
        };
        let waiter = Waiter {
            fd,
            generation,
            keep_alive: request.keep_alive,
        };
        let mut inflight = self.shared.inflight.lock().unwrap();
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push(waiter);
            drop(inflight);
            self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
        } else {
            let mut queue = self.shared.queue.lock().unwrap();
            if queue.len() >= self.shared.queue_depth {
                drop(queue);
                drop(inflight);
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.count(
                    "server_requests_total",
                    &[("endpoint", "/query"), ("status", "503")],
                );
                let body = json::render_error("server overloaded, retry later");
                let resp =
                    http::response(503, "application/json", body.as_bytes(), request.keep_alive);
                self.enqueue_write(fd, &resp);
                return;
            }
            inflight.insert(key.clone(), vec![waiter]);
            queue.push_back(Job { key });
            drop(queue);
            drop(inflight);
            self.shared.queue_cv.notify_one();
        }
        if let Some(conn) = self.conns.get_mut(&fd) {
            conn.busy = true;
        }
    }

    fn drain_completions(&mut self) {
        let completions = std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for c in completions {
            let Some(conn) = self.conns.get_mut(&c.fd) else {
                continue; // connection closed while the query ran
            };
            if conn.generation != c.generation {
                continue; // fd reused by a newer connection
            }
            conn.busy = false;
            if c.close_after {
                conn.close_after_flush = true;
            }
            conn.write_buf.extend_from_slice(&c.bytes);
            // The response is queued; pipelined requests may now proceed.
            self.process_requests(c.fd);
        }
    }

    fn enqueue_write(&mut self, fd: i32, bytes: &[u8]) {
        if let Some(conn) = self.conns.get_mut(&fd) {
            conn.write_buf.extend_from_slice(bytes);
        }
    }

    fn writable(&mut self, fd: i32) {
        self.flush(fd);
    }

    /// Write as much buffered response data as the socket accepts, then
    /// reconcile epoll interest (EPOLLOUT iff bytes remain) and close if a
    /// `Connection: close` response finished flushing.
    fn flush(&mut self, fd: i32) {
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(&fd) else {
                return;
            };
            while conn.pending_write() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        should_close = true;
                        break;
                    }
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
            if !should_close && !conn.pending_write() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_after_flush {
                    should_close = true;
                }
            }
            if !should_close {
                let want = EPOLLIN | EPOLLRDHUP | if conn.pending_write() { EPOLLOUT } else { 0 };
                if want != conn.interest {
                    conn.interest = want;
                    let _ = self.epoll.modify(fd, want, fd as u64);
                }
            }
        }
        if should_close {
            self.close(fd);
        }
    }
}

/// Extract `(relation, sql)` from a `/query` body: either a flat JSON
/// object with a required `sql` field and optional `relation`, or a raw
/// SQL string.
fn parse_query_body(body: &[u8]) -> Result<(Option<String>, String), String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("empty request body; send {\"sql\": \"...\"} or raw SQL".into());
    }
    if trimmed.starts_with('{') {
        let mut fields = json::parse_flat_object(trimmed).map_err(|e| format!("bad JSON: {e}"))?;
        let sql = fields
            .remove("sql")
            .ok_or_else(|| "missing \"sql\" field".to_string())?;
        Ok((fields.remove("relation"), sql))
    } else {
        Ok((None, trimmed.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_body_forms() {
        let (rel, sql) = parse_query_body(br#"{"sql": "SELECT 1", "relation": "census"}"#).unwrap();
        assert_eq!(rel.as_deref(), Some("census"));
        assert_eq!(sql, "SELECT 1");
        let (rel, sql) = parse_query_body(b"SELECT state FROM census GROUP BY state").unwrap();
        assert!(rel.is_none());
        assert!(sql.starts_with("SELECT"));
        assert!(parse_query_body(b"").is_err());
        assert!(parse_query_body(br#"{"relation": "census"}"#).is_err());
        assert!(parse_query_body(br#"{"sql": 1}"#).is_err());
    }
}
