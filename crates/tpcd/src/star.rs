//! A star-schema slice of TPC-D: `lineitem` facts with an `orders`
//! dimension, for exercising **join synopses** (§2).
//!
//! The paper reduces multi-table warehouses to the single-relation case:
//! *"join synopses ... can be viewed as uniform random samples on the
//! results of all the interesting joins ... any join query involving
//! multiple tables on the warehouse can be conceptually rewritten as a
//! query on a single join synopsis relation."* This module generates the
//! fact + dimension pair and materializes the join-synopsis relation that
//! congressional samples are then taken over.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use engine::join::foreign_key_join;
use relation::{Column, ColumnId, DataType, Field, Relation, Schema};

use crate::gen::{GeneratorConfig, TpcdDataset};
use crate::zipf::Zipf;

/// Configuration for the star-schema generator.
#[derive(Debug, Clone, Copy)]
pub struct StarConfig {
    /// Fact-table (lineitem) configuration.
    pub lineitem: GeneratorConfig,
    /// Number of orders in the dimension table.
    pub orders: usize,
    /// Skew of order-priority popularity (Zipf z).
    pub priority_skew: f64,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            lineitem: GeneratorConfig::default(),
            orders: 10_000,
            priority_skew: 0.5,
        }
    }
}

/// A generated star schema: lineitem facts (with `l_orderkey` appended)
/// and the `orders` dimension.
#[derive(Debug, Clone)]
pub struct StarSchema {
    /// The fact table: the standard lineitem schema plus `l_orderkey`.
    pub lineitem: Relation,
    /// The dimension: `(o_orderkey, o_orderpriority, o_orderdate)`.
    pub orders: Relation,
    /// `l_orderkey`'s column id within `lineitem`.
    pub l_orderkey: ColumnId,
    /// `o_orderkey`'s column id within `orders`.
    pub o_orderkey: ColumnId,
}

impl StarSchema {
    /// Generate the pair; deterministic in the lineitem seed.
    pub fn generate(config: StarConfig) -> StarSchema {
        assert!(config.orders >= 1, "need at least one order");
        let base = TpcdDataset::generate(config.lineitem);
        let mut rng = StdRng::seed_from_u64(config.lineitem.seed ^ 0x0DDC0FFE);

        // Orders dimension: 5 named priorities with Zipf-skewed popularity.
        let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
        let pr_dist = Zipf::new(priorities.len(), config.priority_skew);
        let keys: Vec<i64> = (1..=config.orders as i64).collect();
        let mut pr_col = relation::column::StrColumn::new();
        let mut date_col = Vec::with_capacity(config.orders);
        for _ in 0..config.orders {
            pr_col.push(priorities[pr_dist.sample(&mut rng) - 1].into());
            date_col.push(rng.gen_range(9_000..11_500));
        }
        let orders = Relation::new(
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int),
                Field::new("o_orderpriority", DataType::Str),
                Field::new("o_orderdate", DataType::Date),
            ])
            .expect("static schema"),
            vec![
                Column::Int(keys),
                Column::Str(pr_col),
                Column::Date(date_col),
            ],
        )
        .expect("columns match schema");

        // Each lineitem references a uniformly random order.
        let fk: Vec<i64> = (0..base.relation.row_count())
            .map(|_| rng.gen_range(1..=config.orders as i64))
            .collect();
        let lineitem = base
            .relation
            .with_columns(vec![(
                Field::new("l_orderkey", DataType::Int),
                Column::Int(fk),
            )])
            .expect("appending the FK column");
        let l_orderkey = lineitem
            .schema()
            .column_id("l_orderkey")
            .expect("just appended");

        StarSchema {
            lineitem,
            orders,
            l_orderkey,
            o_orderkey: ColumnId(0),
        }
    }

    /// Materialize the join-synopsis base relation `lineitem ⋈ orders`
    /// (dimension columns prefixed `o_`... they already are, so the prefix
    /// is empty). Congressional samples for multi-table queries are taken
    /// over THIS relation.
    pub fn join_relation(&self) -> engine::Result<Relation> {
        foreign_key_join(
            &self.lineitem,
            self.l_orderkey,
            &self.orders,
            self.o_orderkey,
            "",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_exact, AggregateSpec, GroupByQuery, GroupIndex};
    use relation::Expr;

    fn small() -> StarConfig {
        StarConfig {
            lineitem: GeneratorConfig {
                table_size: 5_000,
                num_groups: 8,
                group_skew: 0.86,
                agg_skew: 0.86,
                seed: 77,
            },
            orders: 500,
            priority_skew: 0.5,
        }
    }

    #[test]
    fn generates_consistent_star() {
        let star = StarSchema::generate(small());
        assert_eq!(star.lineitem.row_count(), 5_000);
        assert_eq!(star.orders.row_count(), 500);
        assert_eq!(star.lineitem.schema().width(), 7); // 6 + l_orderkey
                                                       // Every FK resolves.
        let joined = star.join_relation().unwrap();
        assert_eq!(joined.row_count(), 5_000);
        assert_eq!(joined.schema().width(), 10);
    }

    #[test]
    fn join_enables_cross_table_grouping() {
        let star = StarSchema::generate(small());
        let joined = star.join_relation().unwrap();
        let pr = joined.schema().column_id("o_orderpriority").unwrap();
        let qty = joined.schema().column_id("l_quantity").unwrap();
        let q = GroupByQuery::new(vec![pr], vec![AggregateSpec::sum(Expr::col(qty), "s")]);
        let r = execute_exact(&joined, &q).unwrap();
        assert_eq!(r.group_count(), 5); // the five order priorities
                                        // Total matches the fact-only total (the FK join is lossless).
        let total: f64 = r.rows().iter().map(|(_, v)| v[0]).sum();
        let fact_total = execute_exact(
            &star.lineitem,
            &GroupByQuery::new(vec![], vec![AggregateSpec::sum(Expr::col(qty), "s")]),
        )
        .unwrap()
        .scalar()
        .unwrap();
        assert!((total - fact_total).abs() < 1e-6);
    }

    #[test]
    fn priority_popularity_is_skewed() {
        let star = StarSchema::generate(StarConfig {
            priority_skew: 1.5,
            ..small()
        });
        let pr = star.orders.schema().column_id("o_orderpriority").unwrap();
        let ix = GroupIndex::build(&star.orders, &[pr]);
        let sizes = ix.group_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > min * 3, "skewed priorities: {sizes:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = StarSchema::generate(small());
        let b = StarSchema::generate(small());
        let ka = a.lineitem.column(a.l_orderkey).as_int().unwrap();
        let kb = b.lineitem.column(b.l_orderkey).as_int().unwrap();
        assert_eq!(ka, kb);
    }
}
