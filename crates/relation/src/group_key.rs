//! Group keys: tuples of grouping-column values identifying one group.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::relation::Relation;
use crate::schema::ColumnId;
use crate::value::Value;

/// The values of the grouping columns identifying one group.
///
/// An empty key is the single group of a no-group-by query (the paper's
/// `T = ∅` grouping). Keys order lexicographically by their values, which
/// gives deterministic result ordering in query output.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey(Vec<Value>);

impl GroupKey {
    /// Key from values.
    pub fn new(values: Vec<Value>) -> Self {
        GroupKey(values)
    }

    /// The empty key (no-group-by query).
    pub fn empty() -> Self {
        GroupKey(Vec::new())
    }

    /// Extract the key for `row` over the given grouping columns.
    pub fn from_row(rel: &Relation, row: usize, cols: &[ColumnId]) -> Self {
        GroupKey(cols.iter().map(|&c| rel.value(row, c)).collect())
    }

    /// The key's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of grouping columns in the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty (no-group-by) key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Project this key onto a subset of its positions. Used to map a
    /// finest-grouping key to the key of its super-group under a coarser
    /// grouping `T ⊆ G` (the paper's subgroup relation in §4.6).
    pub fn project(&self, positions: &[usize]) -> GroupKey {
        GroupKey(positions.iter().map(|&p| self.0[p].clone()).collect())
    }
}

impl From<Vec<Value>> for GroupKey {
    fn from(v: Vec<Value>) -> Self {
        GroupKey(v)
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "⟨⟩");
        }
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::relation::RelationBuilder;

    #[test]
    fn from_row_extracts_in_order() {
        let mut b = RelationBuilder::new()
            .column("a", DataType::Str)
            .column("b", DataType::Int);
        b.push_row(&[Value::str("x"), Value::Int(1)]).unwrap();
        let r = b.finish();
        let k = GroupKey::from_row(&r, 0, &[ColumnId(1), ColumnId(0)]);
        assert_eq!(k.values(), &[Value::Int(1), Value::str("x")]);
    }

    #[test]
    fn empty_key_semantics() {
        let k = GroupKey::empty();
        assert!(k.is_empty());
        assert_eq!(k.len(), 0);
        assert_eq!(k, GroupKey::new(vec![]));
        assert_eq!(k.to_string(), "⟨⟩");
    }

    #[test]
    fn projection_to_supergroup() {
        let fine = GroupKey::new(vec![Value::str("a1"), Value::str("b2"), Value::Int(3)]);
        // grouping on positions {0, 2} of the finest key
        let coarse = fine.project(&[0, 2]);
        assert_eq!(coarse.values(), &[Value::str("a1"), Value::Int(3)]);
        // empty projection collapses everything into one group
        assert_eq!(fine.project(&[]), GroupKey::empty());
    }

    #[test]
    fn keys_order_lexicographically() {
        let mut keys = [
            GroupKey::new(vec![Value::str("b"), Value::Int(1)]),
            GroupKey::new(vec![Value::str("a"), Value::Int(9)]),
            GroupKey::new(vec![Value::str("a"), Value::Int(2)]),
        ];
        keys.sort();
        assert_eq!(keys[0].values()[0], Value::str("a"));
        assert_eq!(keys[0].values()[1], Value::Int(2));
        assert_eq!(keys[2].values()[0], Value::str("b"));
    }

    #[test]
    fn display_joins_values() {
        let k = GroupKey::new(vec![Value::str("A"), Value::str("F")]);
        assert_eq!(k.to_string(), "⟨A, F⟩");
    }
}
