//! `sample`: draw a biased sample and persist its binary snapshot.

use std::fmt::Write as _;

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::{snapshot, CongressionalSample, GroupCensus};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::Args;
use crate::data::{load, strategy};
use crate::{err, Result};

/// Draw a sample per the chosen strategy and write the snapshot to
/// `--out` (the durable synopsis format).
pub fn sample(args: &Args) -> Result<String> {
    let source = load(args)?;
    let space: f64 = args.get_parsed("space", 0.0f64)?;
    if space <= 0.0 {
        return Err("sample requires --space <tuples>".into());
    }
    let out_path = args.require("out")?.to_string();
    let census = GroupCensus::build(&source.relation, &source.grouping).map_err(err)?;
    let mut rng = StdRng::seed_from_u64(args.get_parsed("seed", 0u64)?);

    let chosen = strategy(args)?;
    let boxed: Box<dyn AllocationStrategy> = match chosen {
        aqua::SamplingStrategy::House => Box::new(House),
        aqua::SamplingStrategy::Senate => Box::new(Senate),
        aqua::SamplingStrategy::BasicCongress => Box::new(BasicCongress),
        aqua::SamplingStrategy::Congress => Box::new(Congress),
    };
    let allocation = boxed.allocate(&census, space).map_err(err)?;
    let sample = CongressionalSample::draw_with_allocation(
        &source.relation,
        &census,
        &allocation,
        boxed.name(),
        &mut rng,
    )
    .map_err(err)?;
    let bytes = snapshot::encode(&sample);
    std::fs::write(&out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "wrote {} ({} bytes): {} strategy, {} tuples over {} strata",
        out_path,
        bytes.len(),
        sample.strategy_name(),
        sample.total_sampled(),
        sample.stratum_count()
    );
    let _ = writeln!(
        out,
        "reload with congress::snapshot::decode or Aqua::build_from_snapshot \
         against the same base table."
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::args;

    #[test]
    fn sample_writes_decodable_snapshot() {
        let dir = std::env::temp_dir().join("congress_cli_sample");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.sample");
        let out = sample(&args(&[
            "sample",
            "--demo",
            "--rows",
            "4000",
            "--groups",
            "27",
            "--space",
            "400",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let bytes = std::fs::read(&path).unwrap();
        let decoded = congress::snapshot::decode(bytes::Bytes::from(bytes)).unwrap();
        assert_eq!(decoded.total_sampled(), 400);
        assert_eq!(decoded.stratum_count(), 27);
    }

    #[test]
    fn sample_requires_out_and_space() {
        let e = sample(&args(&[
            "sample", "--demo", "--rows", "100", "--groups", "8",
        ]))
        .unwrap_err();
        assert!(e.contains("--space"), "{e}");
        let e = sample(&args(&[
            "sample", "--demo", "--rows", "100", "--groups", "8", "--space", "10",
        ]))
        .unwrap_err();
        assert!(e.contains("--out"), "{e}");
    }
}
