//! Civil-date ↔ day-number conversion for `DataType::Date` columns.
//!
//! Dates are stored as days since 1970-01-01 (proleptic Gregorian). The
//! conversion uses Howard Hinnant's `days_from_civil` algorithm — exact
//! over the full `i32` day range, no calendar tables.

use crate::error::{RelationError, Result};

/// Days since 1970-01-01 for a civil date. Valid for any year in
/// `[-32767, 32767]`; month/day are validated.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> Result<i32> {
    if !(1..=12).contains(&month) {
        return Err(RelationError::UnknownColumn(format!(
            "invalid month {month} in date"
        )));
    }
    if day < 1 || day > days_in_month(year, month) {
        return Err(RelationError::UnknownColumn(format!(
            "invalid day {day} for {year}-{month:02}"
        )));
    }
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    Ok((era * 146_097 + doe - 719_468) as i32)
}

/// Civil `(year, month, day)` for a day number.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = i64::from(days) + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Parse a date literal into a day number. Two forms are accepted:
/// ISO `YYYY-MM-DD` and the TPC-D/Oracle style `DD-MON-YY[YY]` the paper's
/// Figure 2 uses (`'01-SEP-98'`; two-digit years map to 1970–2069).
pub fn parse_date(text: &str) -> Result<i32> {
    let bad = || RelationError::UnknownColumn(format!("unparseable date literal `{text}`"));
    let parts: Vec<&str> = text.split('-').collect();
    if parts.len() != 3 {
        return Err(bad());
    }
    // ISO: all numeric, first part is the year.
    if parts[0].len() == 4 && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit())) {
        let year: i32 = parts[0].parse().map_err(|_| bad())?;
        let month: u32 = parts[1].parse().map_err(|_| bad())?;
        let day: u32 = parts[2].parse().map_err(|_| bad())?;
        return days_from_civil(year, month, day);
    }
    // Oracle style: DD-MON-YY or DD-MON-YYYY.
    let day: u32 = parts[0].parse().map_err(|_| bad())?;
    let month = match parts[1].to_ascii_uppercase().as_str() {
        "JAN" => 1,
        "FEB" => 2,
        "MAR" => 3,
        "APR" => 4,
        "MAY" => 5,
        "JUN" => 6,
        "JUL" => 7,
        "AUG" => 8,
        "SEP" => 9,
        "OCT" => 10,
        "NOV" => 11,
        "DEC" => 12,
        _ => return Err(bad()),
    };
    let raw_year: i32 = parts[2].parse().map_err(|_| bad())?;
    let year = match parts[2].len() {
        2 => {
            if raw_year < 70 {
                2000 + raw_year
            } else {
                1900 + raw_year
            }
        }
        4 => raw_year,
        _ => return Err(bad()),
    };
    days_from_civil(year, month, day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1).unwrap(), 0);
        assert_eq!(days_from_civil(1970, 1, 2).unwrap(), 1);
        assert_eq!(days_from_civil(1969, 12, 31).unwrap(), -1);
        assert_eq!(days_from_civil(2000, 3, 1).unwrap(), 11_017);
        // The paper's Figure 2 date.
        assert_eq!(days_from_civil(1998, 9, 1).unwrap(), 10_470);
    }

    #[test]
    fn round_trip_over_a_wide_range() {
        for days in (-200_000..200_000).step_by(373) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d).unwrap(), days, "{y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1999));
        assert!(days_from_civil(2000, 2, 29).is_ok());
        assert!(days_from_civil(1900, 2, 29).is_err());
    }

    #[test]
    fn parse_iso_and_oracle_styles() {
        assert_eq!(parse_date("1998-09-01").unwrap(), 10_470);
        assert_eq!(parse_date("01-SEP-98").unwrap(), 10_470);
        assert_eq!(parse_date("01-sep-1998").unwrap(), 10_470);
        // Two-digit pivot: 69 → 2069, 70 → 1970.
        assert_eq!(parse_date("01-JAN-70").unwrap(), 0);
        let (y, _, _) = civil_from_days(parse_date("01-JAN-69").unwrap());
        assert_eq!(y, 2069);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1998",
            "1998-13-01",
            "31-FEB-98",
            "aa-bb-cc",
            "1-2",
            "01-SEPT-98",
        ] {
            assert!(parse_date(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn validation() {
        assert!(days_from_civil(2001, 0, 1).is_err());
        assert!(days_from_civil(2001, 13, 1).is_err());
        assert!(days_from_civil(2001, 4, 31).is_err());
        assert!(days_from_civil(2001, 4, 0).is_err());
    }
}
