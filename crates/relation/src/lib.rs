#![warn(missing_docs)]

//! In-memory columnar relation substrate.
//!
//! This crate provides the storage layer that the rest of the workspace is
//! built on: typed [`Value`]s, [`Schema`]s, dictionary-encoded columnar
//! [`Relation`]s, a predicate AST ([`Predicate`]) and scalar arithmetic
//! expressions ([`Expr`]) used as aggregation inputs.
//!
//! The design goals mirror what the paper's testbed (Oracle v7 under the Aqua
//! middleware) provided to the authors: a table abstraction that can be
//! scanned, filtered, grouped, and sub-sampled by row index. Nulls are
//! intentionally unsupported — the paper's workload (TPC-D `lineitem` with
//! synthetic skew) never produces them, and omitting them keeps the hot
//! scan/group loops branch-free.
//!
//! # Example
//!
//! ```
//! use relation::{DataType, RelationBuilder, Value};
//!
//! let mut b = RelationBuilder::new()
//!     .column("state", DataType::Str)
//!     .column("income", DataType::Float);
//! b.push_row(&[Value::str("CA"), Value::from(51_000.0)]).unwrap();
//! b.push_row(&[Value::str("WY"), Value::from(48_000.0)]).unwrap();
//! let rel = b.finish();
//! assert_eq!(rel.row_count(), 2);
//! assert_eq!(rel.value(1, rel.schema().column_id("state").unwrap()),
//!            Value::str("WY"));
//! ```

pub mod binio;
pub mod bitmap;
pub mod column;
pub mod csv;
pub mod datatype;
pub mod dates;
pub mod error;
pub mod expr;
pub mod group_key;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod value;

pub use bitmap::Bitmap;
pub use column::Column;
pub use csv::{parse_csv, read_csv, CsvOptions};
pub use datatype::DataType;
pub use dates::{civil_from_days, days_from_civil, parse_date};
pub use error::{RelationError, Result};
pub use expr::Expr;
pub use group_key::GroupKey;
pub use predicate::Predicate;
pub use relation::{Relation, RelationBuilder};
pub use schema::{ColumnId, Field, Schema};
pub use value::{Value, F64};
