//! Quickstart: the paper's Figures 2–4 end to end.
//!
//! Builds a small TPC-D-style `lineitem` table, lets Aqua take a 1%
//! *uniform* (House) synopsis, and runs the simplified TPC-D Query 1:
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus, SUM(l_quantity)
//! FROM lineitem WHERE l_shipdate <= <date>
//! GROUP BY l_returnflag, l_linestatus;
//! ```
//!
//! The smallest group's estimate is visibly worse — the limitation that
//! motivates the paper — and switching the synopsis to Congress fixes it.
//!
//! Run: `cargo run --release --example quickstart`

use aqua::{Aqua, AquaConfig, SamplingStrategy};
use congress::compare_results;
use engine::{AggregateSpec, GroupByQuery};
use relation::{Expr, Predicate, Value};
use tpcd::{GeneratorConfig, TpcdDataset};

fn main() {
    // One group is made ~35× smaller than the rest (the paper's N/F
    // anomaly in the TPC-D data) by using skewed group sizes.
    let ds = TpcdDataset::generate(GeneratorConfig {
        table_size: 200_000,
        num_groups: 10, // → 8 actual groups over 2×2×2 distinct values
        group_skew: 1.5,
        agg_skew: 0.86,
        seed: 1,
    });
    let grouping = ds.grouping_columns();

    // TPC-D Q1 (simplified): group by returnflag × linestatus with a
    // shipdate predicate.
    let median_date = Value::Date(11_000);
    let query = GroupByQuery::new(
        vec![ds.ids.l_returnflag, ds.ids.l_linestatus],
        vec![AggregateSpec::sum(
            Expr::col(ds.ids.l_quantity),
            "sum_l_quantity",
        )],
    )
    .with_predicate(Predicate::le(ds.ids.l_shipdate, median_date));

    for strategy in [SamplingStrategy::House, SamplingStrategy::Congress] {
        let aqua = Aqua::build(
            ds.relation.clone(),
            grouping.clone(),
            AquaConfig {
                space: 2_000, // 1% of the table
                strategy,
                ..AquaConfig::default()
            },
        )
        .expect("aqua builds over the generated table");

        let exact = aqua.exact(&query).expect("exact execution");
        let approx = aqua.answer(&query).expect("approximate answering");
        let report = compare_results(&exact, &approx.result, 0, 100.0);

        println!(
            "=== {} synopsis (1% of {} rows) ===",
            strategy.name(),
            aqua.table_rows()
        );
        println!("approximate answer with 90% bounds:\n{approx}");
        println!("exact answer:\n{exact}");
        println!(
            "per-group error: mean {:.2}%  worst {:.2}%  (missing groups: {})\n",
            report.l1(),
            report.l_inf(),
            report.missing_groups
        );
    }
    println!(
        "Note how the House sample's smallest groups carry the largest errors\n\
         (or vanish outright), while Congress keeps every group accurate —\n\
         the motivation and the contribution of the paper in one run."
    );
}
