//! Offline subset of the `bytes` crate.
//!
//! Implements the pieces `congress::snapshot` and the aqua export path
//! use: [`Bytes`] (cheaply cloneable, sliceable, consumable via [`Buf`])
//! and [`BytesMut`] (growable, writable via [`BufMut`], frozen into
//! `Bytes`). All multi-byte get/put accessors are big-endian, matching
//! the real crate.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer with O(1) clone and slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer viewing a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Read-cursor over a byte source. All integer accessors are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Current unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume `len` bytes into an owned `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Copy into `dst`, consuming `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Growable byte sink. All integer accessors are big-endian.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-cursor for appending encoded values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(7);
        m.put_u16(300);
        m.put_u32(70_000);
        m.put_u64(1 << 40);
        m.put_i32(-5);
        m.put_i64(-6);
        m.put_f64(1.25);
        m.put_slice(b"abc");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_u64(), 1 << 40);
        assert_eq!(b.get_i32(), -5);
        assert_eq!(b.get_i64(), -6);
        assert_eq!(b.get_f64(), 1.25);
        assert_eq!(b.copy_to_bytes(3).to_vec(), b"abc");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.slice(..2).to_vec(), vec![1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
