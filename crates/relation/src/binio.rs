//! Versioned binary encoding of a [`Relation`].
//!
//! The warehouse persistence layer stores base tables alongside their
//! synopses so a restart can rebuild or fall back to exact scans. CSV is
//! the ingestion format, not the durability format — it loses float
//! precision and column types on a round trip. This codec is exact:
//! column-major, dictionary-preserving for strings, and versioned.
//!
//! Integrity is the *caller's* concern (the warehouse manifest records a
//! CRC32C per stored file); decoding here is defensive — a torn or
//! hostile buffer yields an error, never a panic or an unbounded
//! allocation — but carries no checksum of its own.
//!
//! Row-batch helpers ([`encode_rows`] / [`decode_rows`]) serialize loose
//! tuples against a schema; the warehouse write-ahead log uses them for
//! pending-insert records.

use std::sync::Arc;

use crate::column::{Column, StrColumn};
use crate::datatype::DataType;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Field, Schema};
use crate::value::Value;

/// Format magic: `b"RLBN"` (relation binary).
const MAGIC: u32 = 0x524C_424E;
/// Current format version.
const VERSION: u16 = 1;

/// Hard cap on one string (column name or dictionary entry). A length
/// field beyond this is corruption; rejecting it before allocation keeps
/// hostile buffers cheap to dismiss.
pub const MAX_STR_LEN: usize = 1 << 20;

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const TYPE_STR: u8 = 2;
const TYPE_DATE: u8 = 3;

fn corrupt(what: impl Into<String>) -> RelationError {
    RelationError::CorruptEncoding(what.into())
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => TYPE_INT,
        DataType::Float => TYPE_FLOAT,
        DataType::Str => TYPE_STR,
        DataType::Date => TYPE_DATE,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    match tag {
        TYPE_INT => Ok(DataType::Int),
        TYPE_FLOAT => Ok(DataType::Float),
        TYPE_STR => Ok(DataType::Str),
        TYPE_DATE => Ok(DataType::Date),
        t => Err(corrupt(format!("unknown type tag {t}"))),
    }
}

/// Bounds-checked big-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!("truncated {what}")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_be_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn i32(&mut self, what: &str) -> Result<i32> {
        Ok(i32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn string(&mut self, what: &str) -> Result<&'a str> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR_LEN {
            return Err(corrupt(format!(
                "{what} length {len} exceeds maximum {MAX_STR_LEN}"
            )));
        }
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| corrupt(format!("{what} not utf-8")))
    }

    /// Guard a declared element count against the bytes present (at
    /// `min_bytes` each) before the caller reserves capacity.
    fn check_count(&self, count: usize, min_bytes: usize, what: &str) -> Result<()> {
        if (self.remaining() as u64) < (count as u64).saturating_mul(min_bytes as u64) {
            return Err(corrupt(format!(
                "{what} count {count} exceeds what the buffer can hold"
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serialize a relation: schema, then columns (column-major).
pub fn encode(rel: &Relation) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + rel.approx_bytes());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&VERSION.to_be_bytes());
    let schema = rel.schema();
    out.extend_from_slice(&(schema.width() as u16).to_be_bytes());
    for f in schema.fields() {
        put_string(&mut out, &f.name);
        out.push(type_tag(f.data_type));
    }
    out.extend_from_slice(&(rel.row_count() as u64).to_be_bytes());
    for id in 0..schema.width() {
        match rel.column(crate::schema::ColumnId(id)) {
            Column::Int(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
            Column::Float(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_bits().to_be_bytes());
                }
            }
            Column::Date(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
            Column::Str(v) => {
                out.extend_from_slice(&(v.dict_len() as u32).to_be_bytes());
                for code in 0..v.dict_len() as u32 {
                    put_string(&mut out, v.decode(code));
                }
                for &code in v.codes() {
                    out.extend_from_slice(&code.to_be_bytes());
                }
            }
        }
    }
    out
}

/// Deserialize a relation produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Relation> {
    let mut r = Reader::new(buf);
    if r.u32("magic")? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported relation encoding version {version}"
        )));
    }
    let ncols = r.u16("column count")? as usize;
    r.check_count(ncols, 5, "column")?;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.string("column name")?.to_string();
        let dt = tag_type(r.u8("column type")?)?;
        fields.push(Field::new(name, dt));
    }
    let nrows = r.u64("row count")? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for f in &fields {
        let col = match f.data_type {
            DataType::Int => {
                r.check_count(nrows, 8, "int row")?;
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.i64("int value")?);
                }
                Column::Int(v)
            }
            DataType::Float => {
                r.check_count(nrows, 8, "float row")?;
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.f64("float value")?);
                }
                Column::Float(v)
            }
            DataType::Date => {
                r.check_count(nrows, 4, "date row")?;
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.i32("date value")?);
                }
                Column::Date(v)
            }
            DataType::Str => {
                let dict_len = r.u32("dictionary size")? as usize;
                r.check_count(dict_len, 4, "dictionary entry")?;
                let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(Arc::from(r.string("dictionary entry")?));
                }
                r.check_count(nrows, 4, "string row")?;
                let mut col = StrColumn::new();
                for _ in 0..nrows {
                    let code = r.u32("string code")? as usize;
                    let s = dict
                        .get(code)
                        .ok_or_else(|| corrupt(format!("string code {code} out of range")))?;
                    col.push(s.clone());
                }
                Column::Str(col)
            }
        };
        columns.push(col);
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    let schema = Schema::new(fields)?;
    Relation::new(schema, columns)
}

/// Serialize a batch of rows (loose tuples matching `schema`), for WAL
/// records: `u32 row count`, then values row-major with type tags.
pub fn encode_rows(schema: &Schema, rows: &[Vec<Value>]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(16 + rows.len() * schema.width() * 9);
    out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
    for row in rows {
        if row.len() != schema.width() {
            return Err(RelationError::ArityMismatch {
                expected: schema.width(),
                actual: row.len(),
            });
        }
        for (v, f) in row.iter().zip(schema.fields()) {
            match (v, f.data_type) {
                (Value::Int(x), DataType::Int) => {
                    out.push(TYPE_INT);
                    out.extend_from_slice(&x.to_be_bytes());
                }
                // Int widens into Float columns the way Column::push does.
                (Value::Int(x), DataType::Float) => {
                    out.push(TYPE_FLOAT);
                    out.extend_from_slice(&(*x as f64).to_bits().to_be_bytes());
                }
                (Value::Float(x), DataType::Float) => {
                    out.push(TYPE_FLOAT);
                    out.extend_from_slice(&x.get().to_bits().to_be_bytes());
                }
                (Value::Str(s), DataType::Str) => {
                    out.push(TYPE_STR);
                    put_string(&mut out, s);
                }
                (Value::Date(d), DataType::Date) => {
                    out.push(TYPE_DATE);
                    out.extend_from_slice(&d.to_be_bytes());
                }
                (v, dt) => {
                    return Err(RelationError::TypeMismatch {
                        column: f.name.clone(),
                        expected: dt,
                        actual: v.data_type(),
                    })
                }
            }
        }
    }
    Ok(out)
}

/// Deserialize a batch written by [`encode_rows`], validating every value
/// against `schema`.
pub fn decode_rows(schema: &Schema, buf: &[u8]) -> Result<Vec<Vec<Value>>> {
    let mut r = Reader::new(buf);
    let nrows = r.u32("row count")? as usize;
    r.check_count(nrows, schema.width(), "row")?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(schema.width());
        for f in schema.fields() {
            let tag = r.u8("value tag")?;
            let dt = tag_type(tag)?;
            if dt != f.data_type {
                return Err(corrupt(format!(
                    "column `{}`: expected {:?}, found {dt:?}",
                    f.name, f.data_type
                )));
            }
            let v = match dt {
                DataType::Int => Value::Int(r.i64("int value")?),
                DataType::Float => Value::from(r.f64("float value")?),
                DataType::Str => Value::str(r.string("string value")?),
                DataType::Date => Value::Date(r.i32("date value")?),
            };
            row.push(v);
        }
        rows.push(row);
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn sample() -> Relation {
        let mut b = RelationBuilder::new()
            .column("k", DataType::Int)
            .column("g", DataType::Str)
            .column("v", DataType::Float)
            .column("d", DataType::Date);
        for i in 0..50i64 {
            b.push_row(&[
                Value::Int(i),
                Value::str(if i % 3 == 0 { "fizz" } else { "plain" }),
                Value::from(i as f64 * 0.1 + 1e-17), // precision must survive
                Value::Date(10_000 + i as i32),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn round_trip_is_exact() {
        let rel = sample();
        let bytes = encode(&rel);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.schema(), rel.schema());
        assert_eq!(back.row_count(), rel.row_count());
        for row in 0..rel.row_count() {
            assert_eq!(back.row(row).unwrap(), rel.row(row).unwrap());
        }
    }

    #[test]
    fn empty_relation_round_trips() {
        let rel = RelationBuilder::new()
            .column("a", DataType::Int)
            .column("s", DataType::Str)
            .finish();
        let back = decode(&encode(&rel)).unwrap();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.schema(), rel.schema());
    }

    #[test]
    fn rejects_truncation_at_every_offset() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_trailing() {
        let bytes = encode(&sample());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_err());
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(decode(&bad).is_err());
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn hostile_counts_rejected_before_allocation() {
        // Claim u64::MAX rows with a near-empty buffer.
        let rel = RelationBuilder::new().column("a", DataType::Int).finish();
        let mut bytes = encode(&rel);
        let rows_off = bytes.len() - 8;
        bytes[rows_off..].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn string_codes_validated() {
        let mut b = RelationBuilder::new().column("s", DataType::Str);
        b.push_row(&[Value::str("only")]).unwrap();
        let rel = b.finish();
        let mut bytes = encode(&rel);
        // The last 4 bytes are the single row's dictionary code; point it
        // past the dictionary.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&7u32.to_be_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn row_batches_round_trip() {
        let rel = sample();
        let rows: Vec<Vec<Value>> = (0..5).map(|r| rel.row(r).unwrap()).collect();
        let bytes = encode_rows(rel.schema(), &rows).unwrap();
        let back = decode_rows(rel.schema(), &bytes).unwrap();
        assert_eq!(back, rows);
        // Empty batch.
        let bytes = encode_rows(rel.schema(), &[]).unwrap();
        assert!(decode_rows(rel.schema(), &bytes).unwrap().is_empty());
    }

    #[test]
    fn row_batches_validate_schema() {
        let rel = sample();
        // Wrong arity.
        assert!(encode_rows(rel.schema(), &[vec![Value::Int(1)]]).is_err());
        // Wrong type.
        let mut row = rel.row(0).unwrap();
        row[0] = Value::str("not an int");
        assert!(encode_rows(rel.schema(), &[row]).is_err());
        // Torn batch bytes.
        let rows: Vec<Vec<Value>> = vec![rel.row(0).unwrap()];
        let bytes = encode_rows(rel.schema(), &rows).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_rows(rel.schema(), &bytes[..cut]).is_err());
        }
    }
}
