//! §8 "Generalization to Other Queries": recency-biased sampling.
//!
//! "If a sample of the sales data were used to analyze the impact of a
//! recent sales promotion, the sample would be more effective if the most
//! recent sales data were better represented ... replacing the values in
//! the grouping columns by distinct ranges (in this case on dates) and
//! deriving the weight vectors that weigh the ranges appropriately."
//!
//! Six years of sales; the analyst cares about the last two quarters. A
//! recency-weighted congressional sample concentrates its budget there,
//! cutting recent-window error severalfold vs. a uniform sample of the
//! same size, at the cost of noisier whole-history aggregates.
//!
//! Run: `cargo run --release --example aging_warehouse`

use congress::alloc::{House, RangeBias, WorkloadWeighted};
use congress::{compare_results, CongressionalSample, GroupCensus};
use engine::rewrite::{Integrated, SamplePlan};
use engine::{execute_exact, AggregateSpec, GroupByQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{DataType, Expr, Predicate, RelationBuilder, Value};

fn main() {
    // Six years of daily sales, one row per transaction.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut b = RelationBuilder::new()
        .column("day", DataType::Date)
        .column("amount", DataType::Float);
    for day in 0..(6 * 365) {
        let n = rng.gen_range(20..60);
        for _ in 0..n {
            b.push_row(&[Value::Date(day), Value::from(rng.gen_range(5.0..500.0))])
                .unwrap();
        }
    }
    let rel = b.finish();
    let day = rel.schema().column_id("day").unwrap();
    let amount = rel.schema().column_id("amount").unwrap();
    println!("sales table: {} transactions over 6 years", rel.row_count());

    // Quarters as range buckets, decaying by 0.85 per quarter into the past.
    let boundaries: Vec<f64> = (1..24).map(|q| (q * 91) as f64).collect();
    let bias = RangeBias::recency(day, boundaries, 0.85).expect("valid bias");
    let (field, col) = bias.bucket_column(&rel, "quarter").expect("numeric column");
    let rel = rel.with_columns(vec![(field, col)]).expect("append bucket");
    let quarter = rel.schema().column_id("quarter").unwrap();

    // Stratify on the quarter bucket; weight buckets by recency.
    let census = GroupCensus::build(&rel, &[quarter]).expect("census");
    let strategy = WorkloadWeighted::new(vec![bias.grouping_preference(0)]).expect("preferences");
    let space = rel.row_count() as f64 * 0.01; // 1% budget

    let recent_window = Predicate::ge(day, Value::Date(6 * 365 - 182)); // last 2 quarters
    let q_recent = GroupByQuery::new(
        vec![quarter],
        vec![AggregateSpec::avg(Expr::col(amount), "avg_sale")],
    )
    .with_predicate(recent_window);
    let q_history = GroupByQuery::new(vec![], vec![AggregateSpec::sum(Expr::col(amount), "total")]);

    for (label, sample) in [
        (
            "uniform (House)",
            CongressionalSample::draw(&rel, &census, &House, space, &mut rng).unwrap(),
        ),
        (
            "recency-weighted (§8)",
            CongressionalSample::draw(&rel, &census, &strategy, space, &mut rng).unwrap(),
        ),
    ] {
        let input = sample.to_stratified_input(&rel).unwrap();
        let plan = Integrated::build(&input).unwrap();

        let exact = execute_exact(&rel, &q_recent).unwrap();
        let approx = plan.execute(&q_recent).unwrap();
        let recent = compare_results(&exact, &approx, 0, 100.0);

        let exact_total = execute_exact(&rel, &q_history).unwrap().scalar().unwrap();
        let est_total = plan.execute(&q_history).unwrap().scalar().unwrap();
        let hist_err = ((est_total - exact_total) / exact_total).abs() * 100.0;

        println!("\n{label}: {} sampled tuples", sample.total_sampled());
        println!(
            "  recent-quarter AVG errors: mean {:.2}%  worst {:.2}%",
            recent.l1(),
            recent.l_inf()
        );
        println!("  whole-history SUM error: {hist_err:.2}%");
    }
    println!(
        "\nThe recency-weighted sample concentrates its 1% budget where the\n\
         analyst actually queries, cutting recent-window error severalfold.\n\
         The price is paid exactly where the paper says it is: whole-history\n\
         aggregates are scaled up from sparser old strata and get noisier —\n\
         the decay factor is the knob trading recency against history."
    );
}
