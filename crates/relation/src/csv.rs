//! Minimal CSV ingestion: load external data into a [`Relation`].
//!
//! Covers the common case for feeding real warehouse extracts into the
//! sampling pipeline: a header row naming columns, RFC-4180-style quoting
//! (`"..."` fields, doubled `""` escapes), and either caller-specified
//! column types or inference from the data (Int → Float → Date → Str).

use std::io::BufRead;

use crate::column::Column;
use crate::datatype::DataType;
use crate::dates::parse_date;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Field, Schema};
use crate::value::Value;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Column types, positionally. `None` infers from the data: a column
    /// is `Int` if every value parses as an integer, else `Float` if every
    /// value parses as a float, else `Date` if every value parses as a
    /// date literal, else `Str`.
    pub types: Option<Vec<DataType>>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            types: None,
        }
    }
}

/// Split one CSV record into fields, honoring quotes.
fn split_record(line: &str, delimiter: char) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            if field.is_empty() {
                in_quotes = true;
            } else {
                return Err(RelationError::UnknownColumn(format!(
                    "stray quote in CSV record `{line}`"
                )));
            }
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(RelationError::UnknownColumn(format!(
            "unterminated quote in CSV record `{line}`"
        )));
    }
    fields.push(field);
    Ok(fields)
}

fn parses_int(s: &str) -> bool {
    !s.is_empty() && s.parse::<i64>().is_ok()
}

fn parses_float(s: &str) -> bool {
    !s.is_empty() && s.parse::<f64>().is_ok()
}

fn parses_date(s: &str) -> bool {
    parse_date(s).is_ok()
}

/// Infer a column type from its values (all rows must agree).
fn infer_type(values: &[&str]) -> DataType {
    if values.iter().all(|v| parses_int(v)) {
        DataType::Int
    } else if values.iter().all(|v| parses_float(v)) {
        DataType::Float
    } else if values.iter().all(|v| parses_date(v)) {
        DataType::Date
    } else {
        DataType::Str
    }
}

fn parse_value(s: &str, dt: DataType, line_no: usize) -> Result<Value> {
    let bad = |what: &str| {
        RelationError::UnknownColumn(format!("CSV line {line_no}: `{s}` is not a valid {what}"))
    };
    Ok(match dt {
        DataType::Int => Value::Int(s.parse().map_err(|_| bad("integer"))?),
        DataType::Float => Value::from(s.parse::<f64>().map_err(|_| bad("float"))?),
        DataType::Date => {
            // Accept either a day number or a date literal.
            if let Ok(days) = s.parse::<i32>() {
                Value::Date(days)
            } else {
                Value::Date(parse_date(s).map_err(|_| bad("date"))?)
            }
        }
        DataType::Str => Value::str(s),
    })
}

/// Read a CSV document (header row required) into a [`Relation`].
pub fn read_csv<R: BufRead>(reader: R, options: &CsvOptions) -> Result<Relation> {
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line =
            line.map_err(|e| RelationError::UnknownColumn(format!("CSV read error: {e}")))?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    let Some(header) = lines.first() else {
        return Err(RelationError::UnknownColumn(
            "CSV input is empty (no header row)".into(),
        ));
    };
    let names = split_record(header, options.delimiter)?;
    let width = names.len();

    // Split all records up front (types may need a full pass to infer).
    let mut records: Vec<Vec<String>> = Vec::with_capacity(lines.len() - 1);
    for (i, line) in lines[1..].iter().enumerate() {
        let fields = split_record(line, options.delimiter)?;
        if fields.len() != width {
            return Err(RelationError::ArityMismatch {
                expected: width,
                actual: fields.len(),
            });
        }
        let _ = i;
        records.push(fields);
    }

    let types: Vec<DataType> = match &options.types {
        Some(t) => {
            if t.len() != width {
                return Err(RelationError::ArityMismatch {
                    expected: width,
                    actual: t.len(),
                });
            }
            t.clone()
        }
        None => (0..width)
            .map(|c| {
                let col_values: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
                if col_values.is_empty() {
                    DataType::Str
                } else {
                    infer_type(&col_values)
                }
            })
            .collect(),
    };

    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, &t)| Field::new(n.clone(), t))
            .collect(),
    )?;
    let mut columns: Vec<Column> = types
        .iter()
        .map(|&t| Column::with_capacity(t, records.len()))
        .collect();
    for (row_no, record) in records.iter().enumerate() {
        for (c, raw) in record.iter().enumerate() {
            let v = parse_value(raw, types[c], row_no + 2)?;
            columns[c].push(v)?;
        }
    }
    Relation::new(schema, columns)
}

/// Parse CSV text directly (convenience over [`read_csv`]).
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<Relation> {
    read_csv(std::io::Cursor::new(text), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnId;

    #[test]
    fn infers_types_from_data() {
        let rel = parse_csv(
            "state,pop,income,asof\nCA,100,51000.5,1998-09-01\nWY,2,48000.25,1998-10-01\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let s = rel.schema();
        assert_eq!(s.data_type(ColumnId(0)).unwrap(), DataType::Str);
        assert_eq!(s.data_type(ColumnId(1)).unwrap(), DataType::Int);
        assert_eq!(s.data_type(ColumnId(2)).unwrap(), DataType::Float);
        assert_eq!(s.data_type(ColumnId(3)).unwrap(), DataType::Date);
        assert_eq!(rel.row_count(), 2);
        assert_eq!(rel.value(0, ColumnId(1)), Value::Int(100));
        assert_eq!(rel.value(0, ColumnId(3)), Value::Date(10_470));
    }

    #[test]
    fn explicit_types_override_inference() {
        // "pop" would infer Int; force Float.
        let rel = parse_csv(
            "pop\n1\n2\n",
            &CsvOptions {
                types: Some(vec![DataType::Float]),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            rel.schema().data_type(ColumnId(0)).unwrap(),
            DataType::Float
        );
    }

    #[test]
    fn quoting_rules() {
        let rel = parse_csv(
            "name,notes\n\"Smith, Jo\",\"said \"\"hi\"\"\"\nplain,ok\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(rel.value(0, ColumnId(0)), Value::str("Smith, Jo"));
        assert_eq!(rel.value(0, ColumnId(1)), Value::str("said \"hi\""));
        assert_eq!(rel.value(1, ColumnId(0)), Value::str("plain"));
    }

    #[test]
    fn alternative_delimiter() {
        let rel = parse_csv(
            "a;b\n1;2\n",
            &CsvOptions {
                delimiter: ';',
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rel.schema().width(), 2);
        assert_eq!(rel.value(0, ColumnId(1)), Value::Int(2));
    }

    #[test]
    fn error_cases() {
        let o = CsvOptions::default();
        assert!(parse_csv("", &o).is_err()); // empty
        assert!(parse_csv("a,b\n1\n", &o).is_err()); // ragged row
        assert!(parse_csv("a\n\"open\n", &o).is_err()); // unterminated quote
        assert!(parse_csv("a\nx\"y\n", &o).is_err()); // stray quote
                                                      // explicit type mismatch
        let bad = parse_csv(
            "a\nhello\n",
            &CsvOptions {
                types: Some(vec![DataType::Int]),
                ..Default::default()
            },
        );
        assert!(bad.is_err());
        // wrong type-spec arity
        let bad = parse_csv(
            "a,b\n1,2\n",
            &CsvOptions {
                types: Some(vec![DataType::Int]),
                ..Default::default()
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn blank_lines_skipped_and_mixed_column_falls_back_to_str() {
        let rel = parse_csv("v\n\n1\n\nx\n", &CsvOptions::default()).unwrap();
        assert_eq!(rel.row_count(), 2);
        assert_eq!(rel.schema().data_type(ColumnId(0)).unwrap(), DataType::Str);
    }

    #[test]
    fn date_column_accepts_day_numbers() {
        let rel = parse_csv(
            "d\n10470\n",
            &CsvOptions {
                types: Some(vec![DataType::Date]),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rel.value(0, ColumnId(0)), Value::Date(10_470));
    }
}
