//! Per-synopsis memoization for the query-serving fast path.
//!
//! The paper's premise (§5) is that the synopsis is small and precomputed
//! so queries are cheap — but a naive executor still rebuilds a
//! [`GroupIndex`] over the sample and re-derives per-row ScaleFactors on
//! *every* query. The sample only changes on insert/refresh/rebuild, so
//! both are pure functions of synopsis state and can be memoized:
//!
//! * **Group indexes**, keyed by the query's grouping columns `T`. The
//!   cached index is always *unfiltered* (predicates are applied during
//!   accumulation from the selection bitmap), so one index serves every
//!   predicate over the same grouping.
//! * **Measure summaries** ([`MeasureSummary`]): per-(grouping, measure)
//!   aggregate [`Partial`]s folded once in the exact chunked scan order, so
//!   unfiltered and group-only-predicate queries restore accumulators in
//!   O(groups) instead of re-scanning rows — bit-identical to the scan path
//!   because the partials *are* the scan path's output.
//! * **Stratum summaries** ([`StratumSummary`]): per-(group, stratum)
//!   `count` / `Σx` / `Σx²` / range cells feeding the variance-based error
//!   bounds without a row scan.
//! * **The stratum layout**: a stable permutation of sample rows sorted by
//!   stratum id, with one contiguous run per stratum. Expanding per-stratum
//!   ScaleFactors to per-row weights becomes a sequential scan over runs
//!   instead of a hash probe per row.
//! * **Per-row weights** derived from that layout (for the Normalized
//!   family, whose layouts do not store a per-tuple SF column).
//!
//! Concurrency: the maps are sharded by key hash and guarded by
//! `parking_lot::RwLock`s, so the steady state (every entry warm) is
//! read-locks only — many clients answer concurrently without contending on
//! a single mutex. Heavy computation happens outside any lock; on a cold
//! race both racers compute the identical value and the first insert wins.
//!
//! The owner ([`Synopsis`](../../aqua) in the aqua crate) must call
//! [`QueryCache::invalidate`] whenever the backing sample changes;
//! everything here is interior-mutable and `Sync` because answering holds
//! only a read lock on the synopsis.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use relation::{ColumnId, Relation};

use crate::aggregate::Partial;
use crate::grouping::{GroupIndex, PAR_MIN_ROWS};

/// Number of lock shards per table. Sixteen keeps the per-shard collision
/// probability low for realistic working sets (a handful of groupings ×
/// measures) while the array stays small enough to scan on invalidation.
const SHARDS: usize = 16;

fn shard_of<K: Hash + ?Sized>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Execution options threaded through
/// [`SamplePlan::execute_opts`](crate::rewrite::SamplePlan::execute_opts):
/// which cache to consult (if any) and whether chunked parallel
/// aggregation may be used. Results are bit-identical for every
/// combination of these flags.
#[derive(Clone, Copy, Default)]
pub struct ExecOptions<'a> {
    /// Memoized indexes/layouts for the relation being queried. `None`
    /// recomputes everything per query (the cold path).
    pub cache: Option<&'a QueryCache>,
    /// Allow chunked parallel aggregation on the current rayon pool.
    /// Only engages above [`PAR_MIN_ROWS`] rows and >1 thread.
    pub parallel: bool,
    /// Optional per-query trace sink. The executor records which path
    /// served the answer and how many rows it touched; recording never
    /// affects the computed result.
    pub trace: Option<&'a ExecTrace>,
}

/// Which execution path produced a query's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// O(groups) answer from cached measure summaries — no row scan.
    Summary,
    /// Row scan over the sample with memoized group index / layout /
    /// weights (a cache was available).
    CachedScan,
    /// Row scan with everything recomputed (no cache supplied).
    ColdScan,
}

impl ServedFrom {
    /// Stable lowercase label, used as a metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            ServedFrom::Summary => "summary",
            ServedFrom::CachedScan => "cached_scan",
            ServedFrom::ColdScan => "cold_scan",
        }
    }

    /// All variants, in label order.
    pub fn all() -> [ServedFrom; 3] {
        [
            ServedFrom::Summary,
            ServedFrom::CachedScan,
            ServedFrom::ColdScan,
        ]
    }
}

/// Per-query execution trace, written by the executor when
/// [`ExecOptions::trace`] is set. Interior-mutable so the `ExecOptions`
/// struct stays `Copy`; one trace must only be used for one query.
#[derive(Debug, Default)]
pub struct ExecTrace {
    /// 0 = unset, else `ServedFrom as u8 + 1`.
    served: AtomicU8,
    rows_scanned: AtomicU64,
}

impl ExecTrace {
    /// A fresh trace with no path recorded yet.
    pub fn new() -> ExecTrace {
        ExecTrace::default()
    }

    /// Record the serving path and rows touched (executor-internal).
    pub fn record(&self, served: ServedFrom, rows_scanned: u64) {
        self.served.store(served as u8 + 1, Ordering::Relaxed);
        self.rows_scanned.store(rows_scanned, Ordering::Relaxed);
    }

    /// The path that served the query, if the executor recorded one.
    pub fn served(&self) -> Option<ServedFrom> {
        match self.served.load(Ordering::Relaxed) {
            1 => Some(ServedFrom::Summary),
            2 => Some(ServedFrom::CachedScan),
            3 => Some(ServedFrom::ColdScan),
            _ => None,
        }
    }

    /// Rows the executor scanned to answer (0 for summary-served).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }
}

/// Hit/miss counters for a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
}

/// Hit/miss pair for one cache kind or shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
}

impl KindStats {
    /// Hits over total lookups; 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Full counter breakdown for a [`QueryCache`]: per memoized-structure
/// kind, per lock shard (for the sharded maps), plus the invalidation
/// count. `total()` recovers the legacy aggregate [`CacheStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStatsDetail {
    /// Unfiltered group-index lookups.
    pub index: KindStats,
    /// Measure-summary (per-group partials) lookups.
    pub summary: KindStats,
    /// Stratum-summary (bounds moments) lookups.
    pub stratum_summary: KindStats,
    /// Stratum-layout lookups (single-slot, unsharded).
    pub layout: KindStats,
    /// Expanded per-row weight lookups (single-slot, unsharded).
    pub weights: KindStats,
    /// Per-lock-shard totals across the three sharded maps.
    pub shards: Vec<KindStats>,
    /// Times [`QueryCache::invalidate`] dropped every entry.
    pub invalidations: u64,
}

impl CacheStatsDetail {
    /// `(name, stats)` for every kind, in a stable order.
    pub fn kinds(&self) -> [(&'static str, KindStats); 5] {
        [
            ("index", self.index),
            ("summary", self.summary),
            ("stratum_summary", self.stratum_summary),
            ("layout", self.layout),
            ("weights", self.weights),
        ]
    }

    /// Aggregate hit/miss totals over every kind.
    pub fn total(&self) -> CacheStats {
        let mut hits = 0;
        let mut misses = 0;
        for (_, k) in self.kinds() {
            hits += k.hits;
            misses += k.misses;
        }
        CacheStats { hits, misses }
    }
}

/// Cached per-group aggregate state for one (grouping, measure, weighting)
/// triple: exactly the [`Partial`]s the chunked scan produces, one per
/// group id of the cached unfiltered [`GroupIndex`]. Restoring an
/// [`Accumulator`](crate::aggregate::Accumulator) from these is
/// bit-identical to re-running the scan because they *are* the scan's
/// output, folded once in the canonical chunk order.
#[derive(Debug, Clone)]
pub struct MeasureSummary {
    partials: Vec<Partial>,
}

impl MeasureSummary {
    /// Wrap per-group partials (indexed by group id).
    pub fn new(partials: Vec<Partial>) -> MeasureSummary {
        MeasureSummary { partials }
    }

    /// Per-group partials, indexed by group id.
    pub fn partials(&self) -> &[Partial] {
        &self.partials
    }
}

/// Per-(group, stratum) moment cell: `count`, `Σx`, `Σx²`, and the value
/// range. Mirrors `congress::bounds::Moments` field-for-field (the aqua
/// crate converts directly) without making engine depend on congress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumCell {
    /// Number of values folded in.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Sum of squared values.
    pub sum_sq: f64,
    /// Minimum value seen (`+∞` if empty).
    pub min: f64,
    /// Maximum value seen (`-∞` if empty).
    pub max: f64,
}

impl Default for StratumCell {
    fn default() -> Self {
        StratumCell::new()
    }
}

impl StratumCell {
    /// Empty cell.
    pub fn new() -> StratumCell {
        StratumCell {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one value, in the same operation order as
    /// `congress::bounds::Moments::push` so restored moments are
    /// bit-identical to streamed ones.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }
}

/// Per-(group, stratum) moment cells for one (grouping, measure) pair,
/// feeding the variance-based error bounds without scanning rows. Cells
/// are folded in row order (matching the bounds scan) and each group's
/// strata are sorted by stratum id so the downstream bound combination
/// folds in a deterministic order.
#[derive(Debug, Clone)]
pub struct StratumSummary {
    by_group: Vec<Vec<(u32, StratumCell)>>,
}

impl StratumSummary {
    /// Fold every live row of `index` into its (group, stratum) cell.
    /// `values` is the evaluated measure expression (`None` means COUNT,
    /// which folds `1.0` per row — the bounds-path convention).
    pub fn build(
        index: &GroupIndex,
        stratum_of_row: &[u32],
        values: Option<&[f64]>,
    ) -> StratumSummary {
        let mut cells: HashMap<(u32, u32), StratumCell> = HashMap::new();
        for (r, &g) in index.group_ids().iter().enumerate() {
            if g == u32::MAX {
                continue;
            }
            let v = values.map_or(1.0, |vals| vals[r]);
            cells.entry((g, stratum_of_row[r])).or_default().push(v);
        }
        let mut by_group: Vec<Vec<(u32, StratumCell)>> = vec![Vec::new(); index.group_count()];
        for ((g, s), cell) in cells {
            by_group[g as usize].push((s, cell));
        }
        for strata in &mut by_group {
            strata.sort_unstable_by_key(|&(s, _)| s);
        }
        StratumSummary { by_group }
    }

    /// The non-empty strata of group `gid`, sorted by stratum id.
    pub fn strata_of(&self, gid: u32) -> &[(u32, StratumCell)] {
        &self.by_group[gid as usize]
    }
}

type IndexShard = RwLock<HashMap<Vec<ColumnId>, Arc<GroupIndex>>>;
type SummaryKey = (Vec<ColumnId>, String, bool);
type SummaryShard = RwLock<HashMap<SummaryKey, Arc<MeasureSummary>>>;
type StratumKey = (Vec<ColumnId>, String);
type StratumShard = RwLock<HashMap<StratumKey, Arc<StratumSummary>>>;

/// Memoized query-serving state for one immutable sample generation.
///
/// Thread-safe with interior mutability; see the module docs for the
/// sharded read-mostly locking design.
pub struct QueryCache {
    indexes: Vec<IndexShard>,
    summaries: Vec<SummaryShard>,
    stratum_summaries: Vec<StratumShard>,
    layout: RwLock<Option<Arc<StratumLayout>>>,
    weights: RwLock<Option<Arc<Vec<f64>>>>,
    /// Hit/miss counters per cache kind ([`Kind`] order).
    kind_hits: [AtomicU64; KINDS],
    kind_misses: [AtomicU64; KINDS],
    /// Hit/miss counters per lock shard (sharded maps only).
    shard_hits: Vec<AtomicU64>,
    shard_misses: Vec<AtomicU64>,
    invalidations: AtomicU64,
}

/// Internal index into the per-kind counter arrays; mirrors the field
/// order of [`CacheStatsDetail`].
#[derive(Clone, Copy)]
enum Kind {
    Index = 0,
    Summary = 1,
    StratumSummary = 2,
    Layout = 3,
    Weights = 4,
}

const KINDS: usize = 5;

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache {
            indexes: (0..SHARDS).map(|_| RwLock::default()).collect(),
            summaries: (0..SHARDS).map(|_| RwLock::default()).collect(),
            stratum_summaries: (0..SHARDS).map(|_| RwLock::default()).collect(),
            layout: RwLock::new(None),
            weights: RwLock::new(None),
            kind_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            kind_misses: std::array::from_fn(|_| AtomicU64::new(0)),
            shard_hits: (0..SHARDS).map(|_| AtomicU64::new(0)).collect(),
            shard_misses: (0..SHARDS).map(|_| AtomicU64::new(0)).collect(),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        let groupings: usize = self.indexes.iter().map(|s| s.read().len()).sum();
        let summaries: usize = self.summaries.iter().map(|s| s.read().len()).sum();
        f.debug_struct("QueryCache")
            .field("cached_groupings", &groupings)
            .field("cached_summaries", &summaries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl QueryCache {
    /// Fresh, empty cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    #[inline]
    fn hit(&self, kind: Kind, shard: Option<usize>) {
        self.kind_hits[kind as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(s) = shard {
            self.shard_hits[s].fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn miss(&self, kind: Kind, shard: Option<usize>) {
        self.kind_misses[kind as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(s) = shard {
            self.shard_misses[s].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The *unfiltered* group index of `rel` under `cols`, memoized.
    /// `parallel` only affects how a missing index is built (the sharded
    /// build produces an identical index at any thread count).
    pub fn index_for(&self, rel: &Relation, cols: &[ColumnId], parallel: bool) -> Arc<GroupIndex> {
        let shard_ix = shard_of(cols);
        let shard = &self.indexes[shard_ix];
        if let Some(ix) = shard.read().get(cols) {
            self.hit(Kind::Index, Some(shard_ix));
            return Arc::clone(ix);
        }
        self.miss(Kind::Index, Some(shard_ix));
        let built = Arc::new(if parallel && rel.row_count() >= PAR_MIN_ROWS {
            GroupIndex::par_build(rel, cols)
        } else {
            GroupIndex::build(rel, cols)
        });
        Arc::clone(shard.write().entry(cols.to_vec()).or_insert(built))
    }

    /// The memoized per-group [`MeasureSummary`] for `(cols, measure,
    /// weighted)`, building it via `build` on a miss. `weighted`
    /// distinguishes SF-weighted partials (the answer path) from
    /// unweighted ones (NestedIntegrated's inner pass).
    pub fn summary_for(
        &self,
        cols: &[ColumnId],
        measure: &str,
        weighted: bool,
        build: impl FnOnce() -> crate::error::Result<Vec<Partial>>,
    ) -> crate::error::Result<Arc<MeasureSummary>> {
        let key: SummaryKey = (cols.to_vec(), measure.to_string(), weighted);
        let shard_ix = shard_of(&key);
        let shard = &self.summaries[shard_ix];
        if let Some(s) = shard.read().get(&key) {
            self.hit(Kind::Summary, Some(shard_ix));
            return Ok(Arc::clone(s));
        }
        self.miss(Kind::Summary, Some(shard_ix));
        let built = Arc::new(MeasureSummary::new(build()?));
        Ok(Arc::clone(shard.write().entry(key).or_insert(built)))
    }

    /// The memoized [`StratumSummary`] for `(cols, measure)`, building it
    /// via `build` on a miss.
    pub fn stratum_summary_for(
        &self,
        cols: &[ColumnId],
        measure: &str,
        build: impl FnOnce() -> crate::error::Result<StratumSummary>,
    ) -> crate::error::Result<Arc<StratumSummary>> {
        let key: StratumKey = (cols.to_vec(), measure.to_string());
        let shard_ix = shard_of(&key);
        let shard = &self.stratum_summaries[shard_ix];
        if let Some(s) = shard.read().get(&key) {
            self.hit(Kind::StratumSummary, Some(shard_ix));
            return Ok(Arc::clone(s));
        }
        self.miss(Kind::StratumSummary, Some(shard_ix));
        let built = Arc::new(build()?);
        Ok(Arc::clone(shard.write().entry(key).or_insert(built)))
    }

    /// The memoized stratum layout, building it via `build` on a miss.
    pub fn layout_for(&self, build: impl FnOnce() -> StratumLayout) -> Arc<StratumLayout> {
        if let Some(l) = &*self.layout.read() {
            self.hit(Kind::Layout, None);
            return Arc::clone(l);
        }
        self.miss(Kind::Layout, None);
        let l = Arc::new(build());
        let mut guard = self.layout.write();
        Arc::clone(guard.get_or_insert(l))
    }

    /// Memoized per-row weights, building them via `build` on a miss.
    pub fn weights_for(
        &self,
        build: impl FnOnce() -> crate::error::Result<Vec<f64>>,
    ) -> crate::error::Result<Arc<Vec<f64>>> {
        if let Some(w) = &*self.weights.read() {
            self.hit(Kind::Weights, None);
            return Ok(Arc::clone(w));
        }
        self.miss(Kind::Weights, None);
        let w = Arc::new(build()?);
        let mut guard = self.weights.write();
        Ok(Arc::clone(guard.get_or_insert(w)))
    }

    /// Drop every memoized value. Must be called whenever the backing
    /// sample changes (insert/refresh/rebuild/import); counters survive so
    /// long-running systems keep meaningful hit rates.
    pub fn invalidate(&self) {
        for shard in &self.indexes {
            shard.write().clear();
        }
        for shard in &self.summaries {
            shard.write().clear();
        }
        for shard in &self.stratum_summaries {
            shard.write().clear();
        }
        *self.layout.write() = None;
        *self.weights.write() = None;
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime hit/miss counters, aggregated over every cache kind.
    pub fn stats(&self) -> CacheStats {
        self.stats_detailed().total()
    }

    /// Full counter breakdown: per kind, per lock shard, plus the
    /// invalidation count.
    pub fn stats_detailed(&self) -> CacheStatsDetail {
        let kind = |k: Kind| KindStats {
            hits: self.kind_hits[k as usize].load(Ordering::Relaxed),
            misses: self.kind_misses[k as usize].load(Ordering::Relaxed),
        };
        CacheStatsDetail {
            index: kind(Kind::Index),
            summary: kind(Kind::Summary),
            stratum_summary: kind(Kind::StratumSummary),
            layout: kind(Kind::Layout),
            weights: kind(Kind::Weights),
            shards: (0..SHARDS)
                .map(|s| KindStats {
                    hits: self.shard_hits[s].load(Ordering::Relaxed),
                    misses: self.shard_misses[s].load(Ordering::Relaxed),
                })
                .collect(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Sample rows permuted into per-stratum contiguous runs.
///
/// Built once per synopsis generation with a stable counting sort, so run
/// order (by stratum id) and within-run order (by row index) are
/// deterministic.
#[derive(Debug, Clone)]
pub struct StratumLayout {
    /// Row indices sorted by stratum; each stratum is one contiguous run.
    perm: Vec<u32>,
    /// `run_offsets[s]..run_offsets[s + 1]` bounds stratum `s` in `perm`.
    run_offsets: Vec<u32>,
}

impl StratumLayout {
    /// Counting-sort `stratum_of_row` into per-stratum runs.
    pub fn build(stratum_of_row: &[u32], stratum_count: usize) -> StratumLayout {
        let mut counts = vec![0u32; stratum_count];
        for &s in stratum_of_row {
            counts[s as usize] += 1;
        }
        let mut run_offsets = Vec::with_capacity(stratum_count + 1);
        let mut acc = 0u32;
        run_offsets.push(0);
        for &c in &counts {
            acc += c;
            run_offsets.push(acc);
        }
        let mut cursors: Vec<u32> = run_offsets[..stratum_count].to_vec();
        let mut perm = vec![0u32; stratum_of_row.len()];
        for (row, &s) in stratum_of_row.iter().enumerate() {
            let c = &mut cursors[s as usize];
            perm[*c as usize] = row as u32;
            *c += 1;
        }
        StratumLayout { perm, run_offsets }
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.run_offsets.len() - 1
    }

    /// Row indices of stratum `s`, ascending.
    pub fn rows_of(&self, s: usize) -> &[u32] {
        let lo = self.run_offsets[s] as usize;
        let hi = self.run_offsets[s + 1] as usize;
        &self.perm[lo..hi]
    }

    /// Expand per-stratum ScaleFactors into per-row weights by scanning
    /// each contiguous run once — no per-row hash or stratum-id lookup.
    /// The produced weights are exactly `scale_factors[stratum_of_row[r]]`
    /// for every row `r`, so downstream estimates are unchanged.
    pub fn expand(&self, scale_factors: &[f64]) -> Vec<f64> {
        debug_assert_eq!(scale_factors.len(), self.stratum_count());
        let mut out = vec![0.0; self.perm.len()];
        for (s, &sf) in scale_factors.iter().enumerate() {
            for &row in self.rows_of(s) {
                out[row as usize] = sf;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{DataType, RelationBuilder, Value};

    fn rel(n: usize) -> Relation {
        let mut b = RelationBuilder::new()
            .column("g", DataType::Int)
            .column("v", DataType::Float);
        for i in 0..n {
            b.push_row(&[Value::Int((i % 7) as i64), Value::from(i as f64)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn layout_partitions_rows_by_stratum() {
        let strata = vec![2u32, 0, 1, 0, 2, 2, 1];
        let layout = StratumLayout::build(&strata, 3);
        assert_eq!(layout.stratum_count(), 3);
        assert_eq!(layout.rows_of(0), &[1, 3]);
        assert_eq!(layout.rows_of(1), &[2, 6]);
        assert_eq!(layout.rows_of(2), &[0, 4, 5]);
    }

    #[test]
    fn layout_expand_equals_per_row_lookup() {
        let strata: Vec<u32> = (0..1000).map(|i| (i * 13) % 5).collect();
        let sfs = [8.0, 2.5, 1.0, 4.0, 16.0];
        let layout = StratumLayout::build(&strata, 5);
        let expanded = layout.expand(&sfs);
        let naive: Vec<f64> = strata.iter().map(|&s| sfs[s as usize]).collect();
        assert_eq!(expanded, naive);
    }

    #[test]
    fn layout_handles_empty_strata() {
        let strata = vec![0u32, 2, 2];
        let layout = StratumLayout::build(&strata, 4);
        assert_eq!(layout.rows_of(1), &[] as &[u32]);
        assert_eq!(layout.rows_of(3), &[] as &[u32]);
        assert_eq!(layout.expand(&[1.0, 9.0, 3.0, 9.0]), vec![1.0, 3.0, 3.0]);
    }

    #[test]
    fn index_cache_hits_on_same_grouping() {
        let r = rel(100);
        let cache = QueryCache::new();
        let a = cache.index_for(&r, &[ColumnId(0)], false);
        let b = cache.index_for(&r, &[ColumnId(0)], false);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different grouping is a separate entry.
        let c = cache.index_for(&r, &[ColumnId(0), ColumnId(1)], false);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn summary_cache_keys_on_measure_and_weighting() {
        let cache = QueryCache::new();
        let cols = [ColumnId(0)];
        let p = vec![Partial::new()];
        let a = cache
            .summary_for(&cols, "SUM(v)", true, || Ok(p.clone()))
            .unwrap();
        let b = cache
            .summary_for(&cols, "SUM(v)", true, || panic!("must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Same measure, different weighting → distinct entry.
        let c = cache
            .summary_for(&cols, "SUM(v)", false, || Ok(p.clone()))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Different measure → distinct entry.
        let d = cache
            .summary_for(&cols, "COUNT(*)", true, || Ok(p.clone()))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        // Build errors propagate without caching anything.
        assert!(cache
            .summary_for(&cols, "BAD", true, || Err(
                crate::error::EngineError::NoAggregates
            ))
            .is_err());
        assert!(cache
            .summary_for(&cols, "BAD", true, || Ok(p.clone()))
            .is_ok());
    }

    #[test]
    fn stratum_summary_build_matches_naive_moments() {
        let r = rel(40); // g = i % 7, v = i
        let ix = GroupIndex::build(&r, &[ColumnId(0)]);
        let strata: Vec<u32> = (0..40).map(|i| (i / 20) as u32).collect();
        let values: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let summary = StratumSummary::build(&ix, &strata, Some(&values));
        for gid in 0..ix.group_count() as u32 {
            let got = summary.strata_of(gid);
            // Strata sorted ascending, and each cell matches a naive fold.
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
            for &(s, cell) in got {
                let rows: Vec<usize> = (0..40)
                    .filter(|&r2| ix.group_of(r2) == gid && strata[r2] == s)
                    .collect();
                assert_eq!(cell.count, rows.len() as u64);
                let mut want = StratumCell::new();
                for &r2 in &rows {
                    want.push(values[r2]);
                }
                assert_eq!(cell, want);
            }
        }
        // COUNT convention: values = None folds 1.0 per row.
        let counts = StratumSummary::build(&ix, &strata, None);
        let total: f64 = (0..ix.group_count() as u32)
            .flat_map(|g| counts.strata_of(g).iter().map(|&(_, c)| c.sum))
            .sum();
        assert_eq!(total, 40.0);
    }

    #[test]
    fn invalidate_drops_entries_but_keeps_counters() {
        let r = rel(50);
        let cache = QueryCache::new();
        cache.index_for(&r, &[ColumnId(0)], false);
        let _ = cache.layout_for(|| StratumLayout::build(&[0, 0, 1], 2));
        let _ = cache.weights_for(|| Ok(vec![1.0; 3])).unwrap();
        let _ = cache
            .summary_for(&[ColumnId(0)], "SUM(v)", true, || Ok(vec![Partial::new()]))
            .unwrap();
        let ix = GroupIndex::build(&r, &[ColumnId(0)]);
        let _ = cache
            .stratum_summary_for(&[ColumnId(0)], "SUM(v)", || {
                Ok(StratumSummary::build(&ix, &[0; 50], None))
            })
            .unwrap();
        cache.invalidate();
        let before = cache.stats();
        let a = cache.index_for(&r, &[ColumnId(0)], false);
        assert_eq!(cache.stats().misses, before.misses + 1);
        // Re-built after invalidation, not resurrected.
        let b = cache.index_for(&r, &[ColumnId(0)], false);
        assert!(Arc::ptr_eq(&a, &b));
        // Summaries were dropped too: the rebuild closure must run.
        let mut ran = false;
        let _ = cache
            .summary_for(&[ColumnId(0)], "SUM(v)", true, || {
                ran = true;
                Ok(vec![Partial::new()])
            })
            .unwrap();
        assert!(ran);
        let mut ran2 = false;
        let _ = cache
            .stratum_summary_for(&[ColumnId(0)], "SUM(v)", || {
                ran2 = true;
                Ok(StratumSummary::build(&ix, &[0; 50], None))
            })
            .unwrap();
        assert!(ran2);
        assert!(format!("{cache:?}").contains("cached_groupings"));
    }

    #[test]
    fn detailed_stats_break_down_by_kind_and_shard() {
        let r = rel(100);
        let cache = QueryCache::new();
        cache.index_for(&r, &[ColumnId(0)], false);
        cache.index_for(&r, &[ColumnId(0)], false);
        let _ = cache.layout_for(|| StratumLayout::build(&[0, 0], 1));
        let d = cache.stats_detailed();
        assert_eq!((d.index.hits, d.index.misses), (1, 1));
        assert_eq!((d.layout.hits, d.layout.misses), (0, 1));
        assert_eq!((d.summary.hits, d.summary.misses), (0, 0));
        // The aggregate view is exactly the per-kind sum.
        assert_eq!(d.total(), cache.stats());
        assert_eq!(d.total(), CacheStats { hits: 1, misses: 2 });
        // Shard counters only track the sharded maps (index lookups here),
        // and both index lookups hashed to the same shard.
        let shard_total: u64 = d.shards.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(shard_total, 2);
        assert!(d.shards.iter().any(|s| (s.hits, s.misses) == (1, 1)));
        assert!((d.index.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(KindStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn invalidations_are_counted() {
        let cache = QueryCache::new();
        assert_eq!(cache.stats_detailed().invalidations, 0);
        cache.invalidate();
        cache.invalidate();
        assert_eq!(cache.stats_detailed().invalidations, 2);
    }

    #[test]
    fn exec_trace_records_last_path() {
        let t = ExecTrace::new();
        assert_eq!(t.served(), None);
        assert_eq!(t.rows_scanned(), 0);
        t.record(ServedFrom::ColdScan, 123);
        assert_eq!(t.served(), Some(ServedFrom::ColdScan));
        assert_eq!(t.rows_scanned(), 123);
        t.record(ServedFrom::Summary, 0);
        assert_eq!(t.served(), Some(ServedFrom::Summary));
        assert_eq!(t.rows_scanned(), 0);
        for s in ServedFrom::all() {
            t.record(s, 1);
            assert_eq!(t.served(), Some(s));
        }
    }

    #[test]
    fn parallel_index_build_is_identical() {
        let r = rel(10_000);
        let cold = QueryCache::new();
        let seq = cold.index_for(&r, &[ColumnId(0)], false);
        let warm = QueryCache::new();
        let par = warm.index_for(&r, &[ColumnId(0)], true);
        assert_eq!(seq.group_ids(), par.group_ids());
        assert_eq!(seq.keys(), par.keys());
    }

    #[test]
    fn concurrent_reads_share_one_build() {
        let r = rel(5_000);
        let cache = QueryCache::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.index_for(&r, &[ColumnId(0)], false)))
                .collect();
            let first = cache.index_for(&r, &[ColumnId(0)], false);
            for h in handles {
                let ix = h.join().unwrap();
                // All callers converge on the single inserted Arc.
                assert!(Arc::ptr_eq(&ix, &first));
            }
        });
    }
}
