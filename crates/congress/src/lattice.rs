//! The grouping lattice: subsets `T ⊆ G` of the grouping attributes.
//!
//! A grouping over `|G| = k` attributes is represented as a bitmask over
//! attribute *positions* `0..k` (position order matches the census's
//! grouping-column order). The paper's Congress strategy (§4.6) maximizes
//! over all `2^k` subsets; §6's Eq-8 maintainer keeps `m_T`/`n_g` counters
//! per subset.

use serde::{Deserialize, Serialize};

/// A subset of grouping-attribute positions, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Grouping(pub u32);

impl Grouping {
    /// The empty grouping `∅` (no group-by).
    pub const EMPTY: Grouping = Grouping(0);

    /// The full grouping over `k` attributes.
    pub fn full(k: usize) -> Grouping {
        assert!(k <= 31, "at most 31 grouping attributes supported");
        Grouping(((1u64 << k) - 1) as u32)
    }

    /// Grouping containing exactly the given positions.
    pub fn from_positions(positions: &[usize]) -> Grouping {
        let mut m = 0u32;
        for &p in positions {
            assert!(p < 31, "grouping position out of range");
            m |= 1 << p;
        }
        Grouping(m)
    }

    /// The attribute positions in this grouping, ascending.
    pub fn positions(self) -> Vec<usize> {
        (0..32).filter(|&i| self.0 & (1 << i) != 0).collect()
    }

    /// Number of attributes (`|T|`).
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether this is the empty grouping.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: Grouping) -> bool {
        self.0 & other.0 == self.0
    }

    /// Whether `self` contains attribute position `p`.
    pub fn contains(self, p: usize) -> bool {
        self.0 & (1 << p) != 0
    }
}

/// All `2^k` subsets of the full grouping over `k` attributes, in
/// ascending-mask order (so `∅` first, full grouping last).
pub fn all_groupings(k: usize) -> impl Iterator<Item = Grouping> {
    assert!(k <= 20, "2^k groupings would be excessive beyond k = 20");
    (0u32..(1u32 << k)).map(Grouping)
}

/// All subsets ordered by size then mask — the iteration order of the
/// paper's incremental Congress pseudocode (`for i = 0, 1, ..., |G|`).
pub fn groupings_by_size(k: usize) -> Vec<Grouping> {
    let mut v: Vec<Grouping> = all_groupings(k).collect();
    v.sort_by_key(|g| (g.len(), g.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        assert_eq!(Grouping::full(3).0, 0b111);
        assert_eq!(Grouping::EMPTY.len(), 0);
        assert!(Grouping::EMPTY.is_empty());
        assert!(!Grouping::full(1).is_empty());
    }

    #[test]
    fn positions_round_trip() {
        let g = Grouping::from_positions(&[0, 2]);
        assert_eq!(g.positions(), vec![0, 2]);
        assert_eq!(g.len(), 2);
        assert!(g.contains(0) && !g.contains(1) && g.contains(2));
    }

    #[test]
    fn subset_relation() {
        let a = Grouping::from_positions(&[0]);
        let ab = Grouping::from_positions(&[0, 1]);
        assert!(a.is_subset_of(ab));
        assert!(!ab.is_subset_of(a));
        assert!(Grouping::EMPTY.is_subset_of(a));
        assert!(a.is_subset_of(a));
    }

    #[test]
    fn enumeration_counts() {
        assert_eq!(all_groupings(3).count(), 8);
        assert_eq!(all_groupings(0).count(), 1);
        let by_size = groupings_by_size(3);
        assert_eq!(by_size.len(), 8);
        assert_eq!(by_size[0], Grouping::EMPTY);
        assert_eq!(by_size[7], Grouping::full(3));
        // sizes are non-decreasing
        for w in by_size.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    #[should_panic(expected = "at most 31")]
    fn full_rejects_wide() {
        let _ = Grouping::full(32);
    }
}
