//! Property-based tests over the core invariants of the sampling layer.

use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::GroupCensus;
use proptest::prelude::*;
use relation::{ColumnId, GroupKey, Value};
use tpcd::zipf_sizes;

/// Strategy producing a random 2-attribute census: `da × db` groups with
/// sizes in `1..=max_size` (some groups dropped to vary the shape).
fn census_strategy() -> impl Strategy<Value = GroupCensus> {
    (2usize..6, 2usize..6, 1u64..500)
        .prop_flat_map(|(da, db, max_size)| {
            let n = da * db;
            (
                Just((da, db)),
                proptest::collection::vec(1..=max_size, n),
                proptest::collection::vec(proptest::bool::weighted(0.8), n),
            )
        })
        .prop_filter_map("at least one group kept", |((da, _db), sizes, keep)| {
            let mut keys = Vec::new();
            let mut kept_sizes = Vec::new();
            for (i, (&s, &k)) in sizes.iter().zip(&keep).enumerate() {
                if k {
                    keys.push(GroupKey::new(vec![
                        Value::Int((i % da) as i64),
                        Value::Int((i / da) as i64),
                    ]));
                    kept_sizes.push(s);
                }
            }
            if keys.is_empty() {
                return None;
            }
            GroupCensus::from_counts(vec![ColumnId(0), ColumnId(1)], keys, kept_sizes).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy's targets are non-negative and sum to ≈ min(X, and
    /// for strategies that scale, exactly X).
    #[test]
    fn allocations_fit_budget(census in census_strategy(), space in 1.0f64..5_000.0) {
        for (scaled, alloc) in [
            (false, House.allocate(&census, space).unwrap()),
            (false, Senate.allocate(&census, space).unwrap()),
            (true, BasicCongress.allocate(&census, space).unwrap()),
            (true, Congress.allocate(&census, space).unwrap()),
        ] {
            prop_assert!(alloc.targets().iter().all(|&t| t >= 0.0));
            let total = alloc.total();
            prop_assert!(total <= space + 1e-6, "total {total} over budget {space}");
            if scaled {
                // Scaling strategies use the budget fully.
                prop_assert!((total - space).abs() < 1e-6 || alloc.scale_down_factor() == 1.0);
            }
        }
    }

    /// Congress's scale-down factor is in (2^-|G|, 1] (§4.6 analysis).
    #[test]
    fn congress_scaledown_in_theoretical_range(census in census_strategy(), space in 1.0f64..5_000.0) {
        let alloc = Congress.allocate(&census, space).unwrap();
        let f = alloc.scale_down_factor();
        prop_assert!(f <= 1.0 + 1e-12);
        prop_assert!(f > 0.25 - 1e-9, "f = {f} below 2^-2 for |G| = 2");
    }

    /// The Congress guarantee: every group's allocation is ≥ f × its
    /// optimal S1 share under EVERY grouping T ⊆ G.
    #[test]
    fn congress_dominates_all_groupings_up_to_f(census in census_strategy(), space in 10.0f64..5_000.0) {
        let alloc = Congress.allocate(&census, space).unwrap();
        let f = alloc.scale_down_factor();
        for t in congress::lattice::all_groupings(2) {
            let view = census.supergroups(t);
            for (g, &h) in view.supergroup_of.iter().enumerate() {
                let s_gt = space / view.group_count as f64
                    * census.sizes()[g] as f64 / view.sizes[h as usize] as f64;
                prop_assert!(
                    alloc.targets()[g] >= f * s_gt - 1e-9,
                    "group {g} grouping {t:?}: {} < f·{s_gt}", alloc.targets()[g]
                );
            }
        }
    }

    /// Integer counts respect caps and conserve the (capped) budget.
    #[test]
    fn integer_counts_sound(census in census_strategy(), space in 1.0f64..10_000.0) {
        let alloc = Congress.allocate(&census, space).unwrap();
        let counts = alloc.integer_counts(census.sizes());
        let total_rows: u64 = census.total_rows();
        for (c, &n) in counts.iter().zip(census.sizes()) {
            prop_assert!(*c as u64 <= n);
        }
        let want = space.min(total_rows as f64).round() as i64;
        let have: i64 = counts.iter().map(|&c| c as i64).sum();
        prop_assert!((have - want).abs() <= 1 + census.group_count() as i64 / 10,
            "rounded total {have} vs budget {want}");
    }

    /// `zipf_sizes` conserves totals, keeps minimums, and is monotone in rank.
    #[test]
    fn zipf_sizes_invariants(n in 1usize..200, extra in 0u64..10_000, z in 0.0f64..2.0) {
        let total = n as u64 + extra;
        let sizes = zipf_sizes(n, total, z);
        prop_assert_eq!(sizes.len(), n);
        prop_assert_eq!(sizes.iter().sum::<u64>(), total);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
        // Zipf ranks are non-increasing up to rounding jitter of 1.
        for w in sizes.windows(2) {
            prop_assert!(w[1] <= w[0] + 1);
        }
    }

    /// Reservoir sampling keeps exactly min(seen, capacity) items and all
    /// items come from the stream.
    #[test]
    fn reservoir_size_invariant(cap in 0usize..50, stream_len in 0usize..200, seed in 0u64..1000) {
        use congress::build::Reservoir;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Reservoir::new(cap);
        for i in 0..stream_len {
            r.offer(i, &mut rng);
        }
        prop_assert_eq!(r.len(), cap.min(stream_len));
        prop_assert!(r.items().iter().all(|&x| x < stream_len));
        let mut sorted = r.items().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.len(), "duplicates in reservoir");
    }

    /// Eq-8 per-tuple probabilities are valid probabilities whose
    /// population-weighted sum hits the budget (when no cap binds).
    #[test]
    fn per_tuple_probabilities_valid(census in census_strategy(), space in 1.0f64..2_000.0) {
        let probs = congress::alloc::per_tuple_probabilities(&census, space).unwrap();
        prop_assert_eq!(probs.len(), census.group_count());
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let expected: f64 = probs.iter().zip(census.sizes())
            .map(|(&p, &n)| p * n as f64).sum();
        // With capping at 1.0 the expectation can fall below the budget,
        // but can never exceed it.
        prop_assert!(expected <= space + 1e-6);
    }

    /// Group-by error norms satisfy L1 ≤ L2 ≤ L∞ for any error vector.
    #[test]
    fn error_norms_ordered(errs in proptest::collection::vec(0.0f64..200.0, 1..30)) {
        let report = congress::GroupByErrorReport {
            per_group: errs.iter().enumerate()
                .map(|(i, &e)| (GroupKey::new(vec![Value::Int(i as i64)]), e))
                .collect(),
            missing_groups: 0,
            spurious_groups: 0,
        };
        prop_assert!(report.l1() <= report.l2() + 1e-9);
        prop_assert!(report.l2() <= report.l_inf() + 1e-9);
    }
}
