//! Range-partitioned biasing (§8, "Generalization to Other Queries").
//!
//! The paper: *"one may also consider other partitions of the space such as
//! ranges of values, where the user has a biased interest in some of the
//! partitions ... This can be easily achieved in the above framework by
//! replacing the values in the grouping columns by distinct ranges (in this
//! case on dates) and deriving the weight vectors that weigh the ranges
//! appropriately."*
//!
//! The workflow here follows that recipe literally:
//!
//! 1. [`RangeBias::bucket_column`] materializes a derived `Int` column
//!    assigning each tuple its range bucket (e.g. quarters by `shipdate`).
//! 2. The caller appends it to the relation and includes it among the
//!    grouping attributes when taking the census — the buckets become
//!    strata.
//! 3. [`RangeBias::grouping_preference`] yields the §4.7 preference that
//!    weights each bucket (e.g. exponentially decaying with age), to be
//!    fed to [`WorkloadWeighted`](crate::alloc::WorkloadWeighted) — or
//!    combined with other criteria via
//!    [`MultiCriteria`](crate::alloc::MultiCriteria).

use std::collections::HashMap;

use relation::{Column, ColumnId, DataType, Field, GroupKey, Relation, Value};

use crate::alloc::workload::GroupingPreference;
use crate::error::{CongressError, Result};
use crate::lattice::Grouping;

/// A partition of an ordered numeric/date column into weighted ranges.
#[derive(Debug, Clone)]
pub struct RangeBias {
    /// The ordered column being partitioned.
    pub column: ColumnId,
    /// Ascending bucket boundaries; bucket `i` is `[boundaries[i-1],
    /// boundaries[i])`, with open-ended first and last buckets. `k`
    /// boundaries define `k + 1` buckets.
    pub boundaries: Vec<f64>,
    /// Relative preference per bucket (`boundaries.len() + 1` entries).
    pub weights: Vec<f64>,
}

impl RangeBias {
    /// Construct, validating shape and ordering.
    pub fn new(column: ColumnId, boundaries: Vec<f64>, weights: Vec<f64>) -> Result<RangeBias> {
        if weights.len() != boundaries.len() + 1 {
            return Err(CongressError::InvalidSpec(format!(
                "{} boundaries define {} buckets, got {} weights",
                boundaries.len(),
                boundaries.len() + 1,
                weights.len()
            )));
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CongressError::InvalidSpec(
                "range boundaries must be strictly ascending".into(),
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(CongressError::InvalidSpec(
                "bucket weights must be non-negative with a positive total".into(),
            ));
        }
        Ok(RangeBias {
            column,
            boundaries,
            weights,
        })
    }

    /// The §8 motivating case: recency bias. Buckets split `column` at the
    /// given boundaries (oldest first), and bucket `i`'s weight is
    /// `decay^(buckets − 1 − i)` — the newest bucket gets weight 1, each
    /// step into the past multiplies by `decay < 1`... or `decay > 1` to
    /// prefer history.
    pub fn recency(column: ColumnId, boundaries: Vec<f64>, decay: f64) -> Result<RangeBias> {
        if decay.is_nan() || decay <= 0.0 || !decay.is_finite() {
            return Err(CongressError::InvalidSpec(format!(
                "decay must be positive and finite, got {decay}"
            )));
        }
        let buckets = boundaries.len() + 1;
        let weights = (0..buckets)
            .map(|i| decay.powi((buckets - 1 - i) as i32))
            .collect();
        RangeBias::new(column, boundaries, weights)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.weights.len()
    }

    /// Bucket index of a value.
    pub fn bucket_of(&self, v: f64) -> usize {
        self.boundaries.partition_point(|&b| b <= v)
    }

    /// Materialize the derived bucket column for `rel` (step 1 of the §8
    /// recipe). Returns the field/column pair for
    /// [`Relation::with_columns`].
    pub fn bucket_column(&self, rel: &Relation, name: &str) -> Result<(Field, Column)> {
        let field = rel.schema().field(self.column)?;
        if !field.data_type.is_numeric() {
            return Err(CongressError::InvalidSpec(format!(
                "range bias needs a numeric/date column, `{}` is {}",
                field.name, field.data_type
            )));
        }
        let col = rel.column(self.column);
        let buckets: Vec<i64> = (0..rel.row_count())
            .map(|r| self.bucket_of(col.value_f64(r).expect("validated numeric")) as i64)
            .collect();
        Ok((Field::new(name, DataType::Int), Column::Int(buckets)))
    }

    /// The §4.7 preference weighting each bucket (step 3): a preference on
    /// the single-attribute grouping at `bucket_position` (the position of
    /// the derived bucket column within the census's grouping columns),
    /// with `r_h = weights[bucket]`.
    pub fn grouping_preference(&self, bucket_position: usize) -> GroupingPreference {
        let mut weights = HashMap::new();
        for (b, &w) in self.weights.iter().enumerate() {
            weights.insert(GroupKey::new(vec![Value::Int(b as i64)]), w);
        }
        GroupingPreference {
            grouping: Grouping::from_positions(&[bucket_position]),
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocationStrategy, WorkloadWeighted};
    use crate::census::GroupCensus;
    use relation::{DataType, RelationBuilder};

    fn sales(n: i64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("day", DataType::Date)
            .column("amount", DataType::Float);
        for i in 0..n {
            b.push_row(&[Value::Date(i as i32), Value::from(i as f64)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn bucket_assignment() {
        let rb = RangeBias::new(ColumnId(0), vec![10.0, 20.0], vec![1.0, 2.0, 4.0]).unwrap();
        assert_eq!(rb.bucket_count(), 3);
        assert_eq!(rb.bucket_of(-5.0), 0);
        assert_eq!(rb.bucket_of(9.9), 0);
        assert_eq!(rb.bucket_of(10.0), 1);
        assert_eq!(rb.bucket_of(19.9), 1);
        assert_eq!(rb.bucket_of(20.0), 2);
        assert_eq!(rb.bucket_of(1e9), 2);
    }

    #[test]
    fn recency_weights_decay_into_the_past() {
        let rb = RangeBias::recency(ColumnId(0), vec![100.0, 200.0, 300.0], 0.5).unwrap();
        assert_eq!(rb.weights, vec![0.125, 0.25, 0.5, 1.0]);
    }

    #[test]
    fn validation() {
        assert!(RangeBias::new(ColumnId(0), vec![1.0], vec![1.0]).is_err()); // wrong arity
        assert!(RangeBias::new(ColumnId(0), vec![2.0, 1.0], vec![1.0; 3]).is_err()); // unordered
        assert!(RangeBias::new(ColumnId(0), vec![1.0], vec![0.0, 0.0]).is_err()); // zero total
        assert!(RangeBias::recency(ColumnId(0), vec![1.0], 0.0).is_err());
        assert!(RangeBias::recency(ColumnId(0), vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn bucket_column_materializes() {
        let rel = sales(30);
        let rb = RangeBias::recency(ColumnId(0), vec![10.0, 20.0], 0.5).unwrap();
        let (field, col) = rb.bucket_column(&rel, "age_bucket").unwrap();
        assert_eq!(field.data_type, DataType::Int);
        let ids = col.as_int().unwrap();
        assert_eq!(ids[0], 0);
        assert_eq!(ids[15], 1);
        assert_eq!(ids[29], 2);
        // Non-numeric column rejected.
        let mut b = RelationBuilder::new().column("s", DataType::Str);
        b.push_row(&[Value::str("x")]).unwrap();
        let srel = b.finish();
        assert!(rb.bucket_column(&srel, "b").is_err());
    }

    #[test]
    fn end_to_end_recency_biased_allocation() {
        // 30 days of sales in 3 decades; recent decade should dominate the
        // sample even though all decades are the same size.
        let rel = sales(30);
        let rb = RangeBias::recency(ColumnId(0), vec![10.0, 20.0], 0.25).unwrap();
        let (field, col) = rb.bucket_column(&rel, "age_bucket").unwrap();
        let rel = rel.with_columns(vec![(field, col)]).unwrap();
        let bucket_col = rel.schema().column_id("age_bucket").unwrap();
        let census = GroupCensus::build(&rel, &[bucket_col]).unwrap();
        let strategy = WorkloadWeighted::new(vec![rb.grouping_preference(0)]).unwrap();
        let alloc = strategy.allocate(&census, 12.0).unwrap();
        // Buckets have weights 1/16 : 1/4 : 1 → newest bucket gets 16×
        // the oldest bucket's space.
        let target_of = |bucket: i64| -> f64 {
            let idx = census
                .keys()
                .iter()
                .position(|k| k.values()[0] == Value::Int(bucket))
                .unwrap();
            alloc.targets()[idx]
        };
        let (t0, t1, t2) = (target_of(0), target_of(1), target_of(2));
        assert!(t2 > t1 && t1 > t0);
        assert!((t2 / t0 - 16.0).abs() < 1e-9);
        assert!((alloc.total() - 12.0).abs() < 1e-9);
    }
}
