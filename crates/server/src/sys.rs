//! Thin, safe wrappers over the handful of Linux primitives the reactor
//! needs: `epoll` for readiness and an `eventfd` for cross-thread wakeups.
//!
//! The build environment has no `libc` crate, but `std` already links the
//! platform C library, so declaring the symbols `extern "C"` resolves
//! against the same functions `libc` would expose. Only the calls actually
//! used are declared; everything is wrapped in RAII types so raw fds never
//! escape this module un-owned.

use std::io;

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
/// Mirror of the kernel's `struct epoll_event` (packed on x86_64).
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported; no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// An epoll instance. Registered interest is keyed by a caller-chosen
/// `u64` token carried back in each ready event.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the registered interest set for `fd`.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Unregister `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness (or `timeout_ms`; -1 = forever), filling
    /// `events`. Returns the number of ready entries. EINTR retries
    /// internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: worker threads `notify()` it, the reactor has it
/// registered for `EPOLLIN` and `drain()`s on wakeup. Semaphore semantics
/// are unnecessary — one drain observes any number of notifies.
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The fd, for epoll registration. Ownership stays here.
    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Wake the reactor. Infallible by construction: the counter can only
    /// saturate if 2^64−1 notifies go un-drained.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
    }

    /// Clear the counter so the (level-triggered) epoll stops reporting
    /// readiness.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Not yet notified: times out with nothing ready.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.notify();
        ev.notify();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);

        // One drain absorbs both notifies; readiness clears.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn delete_unregisters() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 7).unwrap();
        ep.delete(ev.raw_fd()).unwrap();
        ev.notify();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
