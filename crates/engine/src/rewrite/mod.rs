//! The paper's four query-rewriting strategies (§5.2) as physical plans.
//!
//! Given a [`StratifiedInput`](crate::StratifiedInput), each strategy materializes a physical
//! *synopsis layout* once (at sample-construction time) and then answers
//! arbitrary [`GroupByQuery`]s against it:
//!
//! | Strategy | Layout | Per-query cost profile |
//! |---|---|---|
//! | [`Integrated`] | SF column stored per tuple (Fig 8) | one multiply per tuple |
//! | [`NestedIntegrated`] | SF column per tuple, nested plan (Fig 11) | one multiply per (group × SF) |
//! | [`Normalized`] | SF in AuxRel, joined on grouping columns (Fig 9) | multi-attribute hash join |
//! | [`KeyNormalized`] | SF in AuxRel, joined on integer GID (Fig 10) | single-int hash join |
//!
//! All four produce the *same* unbiased stratified estimate (§5.1) — an
//! invariant the integration tests assert — and differ only in execution
//! cost and maintenance cost (Integrated layouts duplicate the SF into
//! every tuple, so a group's rate change rewrites many tuples; Normalized
//! layouts confine it to one AuxRel row).

mod integrated;
mod key_normalized;
mod nested_integrated;
mod normalized;

pub use integrated::Integrated;
pub use key_normalized::KeyNormalized;
pub use nested_integrated::NestedIntegrated;
pub use normalized::Normalized;

use std::sync::Arc;

use rayon::prelude::*;
use relation::{Bitmap, ColumnId, Expr, Predicate, Relation};

use crate::aggregate::{Accumulator, Partial};
use crate::cache::{ExecOptions, QueryCache, ServedFrom};
use crate::error::Result;
use crate::grouping::{GroupIndex, PAR_MIN_ROWS};
use crate::query::GroupByQuery;
use crate::result::QueryResult;

/// A physical sample layout that can answer group-by queries approximately.
pub trait SamplePlan {
    /// Strategy name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Execute `query` against the sample with explicit execution options
    /// (query cache, parallel aggregation). The result is bit-identical
    /// for every option combination; options only change the cost.
    fn execute_opts(&self, query: &GroupByQuery, opts: &ExecOptions) -> Result<QueryResult>;

    /// Execute `query` against the sample, producing scaled estimates.
    /// Equivalent to [`Self::execute_opts`] with default (cold, serial)
    /// options.
    fn execute(&self, query: &GroupByQuery) -> Result<QueryResult> {
        self.execute_opts(query, &ExecOptions::default())
    }

    /// The materialized sample relation (including any SF/GID columns).
    fn sample_relation(&self) -> &Relation;

    /// Total bytes of synopsis storage (sample plus any auxiliary relation).
    fn storage_bytes(&self) -> usize {
        self.sample_relation().approx_bytes()
    }

    /// How many stored cells must be rewritten when stratum `stratum`'s
    /// sampling rate (ScaleFactor) changes — the maintenance-cost side of
    /// the §5.2 trade-off. Integrated layouts duplicate the SF into every
    /// tuple, so the whole stratum is touched; Normalized layouts confine
    /// the change to a single AuxRel row.
    fn rate_change_cost(&self, stratum: u32) -> usize;
}

/// Rows per aggregation chunk. Fixed (rather than derived from the thread
/// count) so that serial and parallel execution produce *bit-identical*
/// accumulators: both compute the same per-chunk partials and merge them in
/// chunk order. A multiple of 64 so chunk boundaries align with bitmap
/// words.
pub(crate) const CHUNK_ROWS: usize = 16 * 1024;

/// Minimum chunk count before chunked aggregation fans out to rayon.
/// Chunk boundaries are fixed by [`CHUNK_ROWS`] for determinism, so the
/// only free knob is whether chunks run concurrently — and with fewer
/// than ~8 chunks (≈128Ki rows) the fork/join overhead outweighs the
/// parallel speedup (the cold-parallel regression recorded in
/// BENCH_query.json: 631.8 q/s parallel vs 688.1 serial at 50k sample
/// rows). Below this many chunks the fold runs serially; the merged
/// result is bit-identical either way.
pub(crate) const PAR_MIN_CHUNKS: usize = 8;

/// The *unfiltered* group index for `cols` over `rel`: from the query cache
/// when one is supplied, freshly built otherwise. The parallel build is
/// used above [`PAR_MIN_ROWS`] rows when `opts.parallel` is set; it yields
/// an identical index at any thread count.
pub(crate) fn grouping_index(
    rel: &Relation,
    cols: &[ColumnId],
    opts: &ExecOptions,
) -> Arc<GroupIndex> {
    match opts.cache {
        Some(cache) => cache.index_for(rel, cols, opts.parallel),
        None => Arc::new(if opts.parallel && rel.row_count() >= PAR_MIN_ROWS {
            GroupIndex::par_build(rel, cols)
        } else {
            GroupIndex::build(rel, cols)
        }),
    }
}

/// Evaluate each aggregate's input expression over the rows selected by
/// `mask` only (satellite of the fast path: unselected rows used to be
/// evaluated and then discarded).
pub(crate) fn masked_exprs(
    rel: &Relation,
    query: &GroupByQuery,
    mask: &Bitmap,
) -> Result<Vec<Option<Vec<f64>>>> {
    Ok(query
        .aggregates
        .iter()
        .map(|a| {
            a.expr
                .as_ref()
                .map(|e| e.eval_masked(rel, mask))
                .transpose()
        })
        .collect::<std::result::Result<_, _>>()?)
}

/// Chunked (optionally parallel) accumulation of the masked rows of `rel`
/// into per-group accumulators.
///
/// Determinism contract: the row range is cut into fixed [`CHUNK_ROWS`]
/// chunks, each chunk folds its selected rows in row order, and partials
/// are merged in chunk order — so the result is bit-identical whether the
/// chunks ran on one thread or sixteen. Inputs of at most one chunk take a
/// direct single pass (which is the same computation, minus the merges).
pub(crate) fn accumulate(
    index: &GroupIndex,
    mask: &Bitmap,
    exprs: &[Option<Vec<f64>>],
    weights: Option<&[f64]>,
    query: &GroupByQuery,
    parallel: bool,
) -> Vec<Vec<Accumulator>> {
    let n = mask.len();
    let chunk_accs = |start: usize, end: usize| -> Vec<Vec<Accumulator>> {
        let mut accs: Vec<Vec<Accumulator>> = (0..index.group_count())
            .map(|_| {
                query
                    .aggregates
                    .iter()
                    .map(|a| Accumulator::new(a.func))
                    .collect()
            })
            .collect();
        for row in mask.ones_range(start, end) {
            let gid = index.group_of(row);
            if gid == u32::MAX {
                continue;
            }
            let w = weights.map_or(1.0, |ws| ws[row]);
            for (ai, acc) in accs[gid as usize].iter_mut().enumerate() {
                let v = exprs[ai].as_ref().map_or(0.0, |vals| vals[row]);
                acc.add(v, w);
            }
        }
        accs
    };

    if n <= CHUNK_ROWS {
        return chunk_accs(0, n);
    }
    let starts: Vec<usize> = (0..n).step_by(CHUNK_ROWS).collect();
    let fan_out = parallel && starts.len() >= PAR_MIN_CHUNKS && rayon::current_num_threads() > 1;
    let partials: Vec<Vec<Vec<Accumulator>>> = if fan_out {
        starts
            .par_iter()
            .map(|&s| chunk_accs(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    } else {
        starts
            .iter()
            .map(|&s| chunk_accs(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    };
    let mut iter = partials.into_iter();
    let mut base = iter.next().expect("at least one chunk");
    for partial in iter {
        for (group, partial_group) in base.iter_mut().zip(partial) {
            for (acc, p) in group.iter_mut().zip(partial_group) {
                acc.merge(&p);
            }
        }
    }
    base
}

/// Canonical cache key for a measure expression. `Debug` formatting is
/// injective over [`Expr`] trees (unlike `Display`, which cannot
/// distinguish e.g. the literal `1` from a column named `1`), and `None`
/// — the COUNT measure — gets its own reserved spelling. Public so the
/// bounds layer keys its stratum summaries the same way.
pub fn measure_key(expr: Option<&Expr>) -> String {
    match expr {
        Some(e) => format!("{e:?}"),
        None => "COUNT(*)".to_string(),
    }
}

/// Fold every row of the *unfiltered* `index` into one [`Partial`] per
/// group for a single measure — the builder for cached
/// [`MeasureSummary`](crate::cache::MeasureSummary)s.
///
/// Uses exactly [`accumulate`]'s chunk structure (fixed [`CHUNK_ROWS`]
/// boundaries, row-order fold per chunk, chunk-order merge), so an
/// accumulator restored from these partials is bit-identical to one the
/// scan path would have produced over the same rows.
pub(crate) fn accumulate_partials(
    index: &GroupIndex,
    values: Option<&[f64]>,
    weights: Option<&[f64]>,
    parallel: bool,
) -> Vec<Partial> {
    let n = index.group_ids().len();
    let chunk_ps = |start: usize, end: usize| -> Vec<Partial> {
        let mut ps = vec![Partial::new(); index.group_count()];
        for row in start..end {
            let gid = index.group_of(row);
            if gid == u32::MAX {
                continue;
            }
            let w = weights.map_or(1.0, |ws| ws[row]);
            let v = values.map_or(0.0, |vals| vals[row]);
            ps[gid as usize].add(v, w);
        }
        ps
    };

    if n <= CHUNK_ROWS {
        return chunk_ps(0, n);
    }
    let starts: Vec<usize> = (0..n).step_by(CHUNK_ROWS).collect();
    let fan_out = parallel && starts.len() >= PAR_MIN_CHUNKS && rayon::current_num_threads() > 1;
    let partials: Vec<Vec<Partial>> = if fan_out {
        starts
            .par_iter()
            .map(|&s| chunk_ps(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    } else {
        starts
            .iter()
            .map(|&s| chunk_ps(s, (s + CHUNK_ROWS).min(n)))
            .collect()
    };
    let mut iter = partials.into_iter();
    let mut base = iter.next().expect("at least one chunk");
    for partial in iter {
        for (p, q) in base.iter_mut().zip(partial) {
            p.merge(&q);
        }
    }
    base
}

/// O(groups) accumulator assembly from cached per-group summaries.
///
/// Valid only when `query.predicate` references grouping columns alone
/// (checked by the caller via `Predicate::references_only`): then the
/// predicate is constant within each group, so a group is either fully
/// selected — its cached partial *is* the scan result over its rows — or
/// fully excluded, in which case a fresh empty accumulator makes
/// [`finish_rows`] drop it exactly as the scan path would. The predicate
/// is evaluated once per group on its representative row instead of once
/// per sample row.
///
/// The summaries are keyed per (grouping, measure, weighted) in `cache`,
/// which must be private to this (relation, weights) generation — the
/// same ownership contract as the cached indexes and weights.
pub(crate) fn summary_accumulators(
    rel: &Relation,
    index: &GroupIndex,
    weights: Option<&[f64]>,
    query: &GroupByQuery,
    opts: &ExecOptions,
    cache: &QueryCache,
) -> Result<Vec<Vec<Accumulator>>> {
    let selected: Option<Vec<bool>> = match &query.predicate {
        Predicate::True => None,
        p => Some(
            (0..index.group_count() as u32)
                .map(|g| p.eval_row(rel, index.first_row(g)))
                .collect(),
        ),
    };

    let mut accs: Vec<Vec<Accumulator>> = (0..index.group_count())
        .map(|_| Vec::with_capacity(query.aggregates.len()))
        .collect();
    for spec in &query.aggregates {
        let summary = cache.summary_for(
            index.columns(),
            &measure_key(spec.expr.as_ref()),
            weights.is_some(),
            || {
                let values = spec.expr.as_ref().map(|e| e.eval(rel)).transpose()?;
                Ok(accumulate_partials(
                    index,
                    values.as_deref(),
                    weights,
                    opts.parallel,
                ))
            },
        )?;
        for (g, group_accs) in accs.iter_mut().enumerate() {
            let keep = selected.as_ref().is_none_or(|s| s[g]);
            group_accs.push(if keep {
                Accumulator::from_partial(spec.func, summary.partials()[g])
            } else {
                Accumulator::new(spec.func)
            });
        }
    }
    Ok(accs)
}

/// Turn per-group accumulators into a sorted [`QueryResult`], dropping
/// groups with no qualifying rows and applying HAVING.
pub(crate) fn finish_rows(
    index: &GroupIndex,
    accs: Vec<Vec<Accumulator>>,
    query: &GroupByQuery,
) -> Result<QueryResult> {
    let names = query.aggregates.iter().map(|a| a.name.clone()).collect();
    // Emit rows in the index's memoized key order: identical to sorting
    // after the fact (keys are distinct), but warm queries skip the sort.
    let mut rows = Vec::with_capacity(accs.len());
    for &gid in index.gids_by_key() {
        let a = &accs[gid as usize];
        if a.first().is_some_and(|x| x.rows() > 0) {
            rows.push((
                index.key(gid).clone(),
                a.iter().map(Accumulator::finish).collect(),
            ));
        }
    }
    query.apply_having(QueryResult::from_sorted(names, rows))
}

/// [`summary_accumulators`] fused with [`finish_rows`] for the flat
/// rewrites: rows are emitted straight from the cached partials in key
/// order, skipping the per-group accumulator vectors entirely. Same
/// validity precondition (group-only predicate) and the same output as
/// running the two stages separately.
pub(crate) fn summary_rows(
    rel: &Relation,
    index: &GroupIndex,
    weights: Option<&[f64]>,
    query: &GroupByQuery,
    opts: &ExecOptions,
    cache: &QueryCache,
) -> Result<QueryResult> {
    let summaries: Vec<_> = query
        .aggregates
        .iter()
        .map(|spec| {
            cache.summary_for(
                index.columns(),
                &measure_key(spec.expr.as_ref()),
                weights.is_some(),
                || {
                    let values = spec.expr.as_ref().map(|e| e.eval(rel)).transpose()?;
                    Ok(accumulate_partials(
                        index,
                        values.as_deref(),
                        weights,
                        opts.parallel,
                    ))
                },
            )
        })
        .collect::<Result<_>>()?;
    let selected: Option<Vec<bool>> = match &query.predicate {
        Predicate::True => None,
        p => Some(
            (0..index.group_count() as u32)
                .map(|g| p.eval_row(rel, index.first_row(g)))
                .collect(),
        ),
    };

    let names = query.aggregates.iter().map(|a| a.name.clone()).collect();
    let mut rows = Vec::with_capacity(index.group_count());
    for &gid in index.gids_by_key() {
        let g = gid as usize;
        if selected.as_ref().is_some_and(|s| !s[g]) {
            continue;
        }
        // Unfiltered partials: a group with no rows cannot exist, but keep
        // the same rows() guard the accumulator path applies.
        let Some(first) = summaries.first() else {
            break;
        };
        if first.partials()[g].rows() == 0 {
            continue;
        }
        rows.push((
            index.key(gid).clone(),
            query
                .aggregates
                .iter()
                .zip(&summaries)
                .map(|(spec, s)| Accumulator::from_partial(spec.func, s.partials()[g]).finish())
                .collect(),
        ));
    }
    query.apply_having(QueryResult::from_sorted(names, rows))
}

/// Shared flat aggregation: evaluate `query` over `rel` where each row
/// carries precomputed weight `weights[row]` (its stratum's ScaleFactor).
///
/// This is the execution core of Integrated, Normalized, and Key-normalized
/// — they differ only in how `weights` is obtained. The group index is the
/// *unfiltered* one (cacheable across predicates); the selection bitmap is
/// applied during accumulation instead.
pub(crate) fn aggregate_weighted_opts(
    rel: &Relation,
    weights: &[f64],
    query: &GroupByQuery,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    query.validate(rel)?;
    debug_assert_eq!(weights.len(), rel.row_count());

    // O(groups) fast path: a predicate over the grouping columns alone is
    // constant per group, so cached per-group partials answer the query
    // without touching any sample row (see `summary_accumulators` for the
    // bit-identity argument).
    if let Some(cache) = opts.cache {
        if rel.row_count() > 0 && query.predicate.references_only(&query.grouping) {
            if let Some(trace) = opts.trace {
                trace.record(ServedFrom::Summary, 0);
            }
            let index = cache.index_for(rel, &query.grouping, opts.parallel);
            return summary_rows(rel, &index, Some(weights), query, opts, cache);
        }
    }

    if let Some(trace) = opts.trace {
        let served = if opts.cache.is_some() {
            ServedFrom::CachedScan
        } else {
            ServedFrom::ColdScan
        };
        trace.record(served, rel.row_count() as u64);
    }
    let mask = query.predicate.eval(rel);
    let index = grouping_index(rel, &query.grouping, opts);
    let exprs = masked_exprs(rel, query, &mask)?;
    let accs = accumulate(&index, &mask, &exprs, Some(weights), query, opts.parallel);
    finish_rows(&index, accs, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::stratified::test_support::{pred_v_ge, sample};
    use relation::{ColumnId, Expr, GroupKey, Value};

    /// Construct all four plans over the shared fixture.
    fn plans() -> Vec<Box<dyn SamplePlan>> {
        let s = sample();
        vec![
            Box::new(Integrated::build(&s).unwrap()),
            Box::new(NestedIntegrated::build(&s).unwrap()),
            Box::new(Normalized::build(&s).unwrap()),
            Box::new(KeyNormalized::build(&s).unwrap()),
        ]
    }

    fn queries() -> Vec<GroupByQuery> {
        let v = Expr::col(ColumnId(2));
        vec![
            // finest grouping
            GroupByQuery::new(
                vec![ColumnId(0), ColumnId(1)],
                vec![
                    AggregateSpec::sum(v.clone(), "s"),
                    AggregateSpec::count("c"),
                    AggregateSpec::avg(v.clone(), "a"),
                ],
            ),
            // coarser grouping on a alone (strata merge within groups)
            GroupByQuery::new(
                vec![ColumnId(0)],
                vec![
                    AggregateSpec::sum(v.clone(), "s"),
                    AggregateSpec::count("c"),
                ],
            ),
            // no grouping
            GroupByQuery::new(vec![], vec![AggregateSpec::sum(v.clone(), "s")]),
            // with predicate
            GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::sum(v.clone(), "s")])
                .with_predicate(pred_v_ge(3.0)),
            // grouping on the non-stratum column b
            GroupByQuery::new(
                vec![ColumnId(1)],
                vec![AggregateSpec::avg(v, "a"), AggregateSpec::count("c")],
            ),
        ]
    }

    #[test]
    fn all_strategies_agree_exactly() {
        let plans = plans();
        for q in queries() {
            let reference = plans[0].execute(&q).unwrap();
            for p in &plans[1..] {
                let r = p.execute(&q).unwrap();
                assert_eq!(
                    r.aggregate_names,
                    reference.aggregate_names,
                    "{} names",
                    p.name()
                );
                assert_eq!(
                    r.group_count(),
                    reference.group_count(),
                    "{} group count for {:?}",
                    p.name(),
                    q.grouping
                );
                for ((k1, v1), (k2, v2)) in r.rows().iter().zip(reference.rows()) {
                    assert_eq!(k1, k2, "{} keys", p.name());
                    for (x, y) in v1.iter().zip(v2) {
                        assert!(
                            (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                            "{}: {x} vs {y} for key {k1}",
                            p.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn estimates_scale_correctly() {
        // Fixture: ("x",1) has 4 rows sampled 2 @SF=2; ("x",2) 2 rows
        // sampled 1 @SF=2; ("y",1) fully sampled @SF=1.
        let plans = plans();
        let q = GroupByQuery::new(vec![ColumnId(0)], vec![AggregateSpec::count("c")]);
        for p in &plans {
            let r = p.execute(&q).unwrap();
            let x = GroupKey::new(vec![Value::str("x")]);
            let y = GroupKey::new(vec![Value::str("y")]);
            // COUNT(x) = 2·2 + 1·2 = 6 (true count 6); COUNT(y) = 2·1 = 2.
            assert_eq!(r.get(&x), Some(&[6.0][..]), "{}", p.name());
            assert_eq!(r.get(&y), Some(&[2.0][..]), "{}", p.name());
        }
    }

    #[test]
    fn fully_sampled_stratum_is_exact() {
        // ("y",1) is sampled at rate 1, so any query isolating it is exact.
        let plans = plans();
        let q = GroupByQuery::new(
            vec![ColumnId(0), ColumnId(1)],
            vec![
                AggregateSpec::sum(Expr::col(ColumnId(2)), "s"),
                AggregateSpec::avg(Expr::col(ColumnId(2)), "a"),
            ],
        );
        let y1 = GroupKey::new(vec![Value::str("y"), Value::Int(1)]);
        for p in &plans {
            let r = p.execute(&q).unwrap();
            let vals = r.get(&y1).unwrap();
            assert_eq!(vals[0], 300.0, "{}", p.name());
            assert_eq!(vals[1], 150.0, "{}", p.name());
        }
    }

    #[test]
    fn storage_accounting_positive() {
        for p in plans() {
            assert!(p.storage_bytes() > 0, "{}", p.name());
        }
    }

    #[test]
    fn rate_change_cost_tradeoff() {
        // Fixture strata sizes: 2, 1, 2 sampled tuples.
        let s = sample();
        let integrated = Integrated::build(&s).unwrap();
        let nested = NestedIntegrated::build(&s).unwrap();
        let norm = Normalized::build(&s).unwrap();
        let keyn = KeyNormalized::build(&s).unwrap();
        // Integrated layouts rewrite every tuple of the stratum.
        assert_eq!(integrated.rate_change_cost(0), 2);
        assert_eq!(integrated.rate_change_cost(1), 1);
        assert_eq!(nested.rate_change_cost(2), 2);
        // Normalized layouts touch exactly one AuxRel row.
        assert_eq!(norm.rate_change_cost(0), 1);
        assert_eq!(keyn.rate_change_cost(2), 1);
        // Unknown strata cost nothing on the normalized side.
        assert_eq!(norm.rate_change_cost(99), 0);
        assert_eq!(integrated.rate_change_cost(99), 0);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = plans().iter().map(|p| p.name()).collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
