//! Middleware configuration: sampling strategy, rewrite strategy, space,
//! confidence.

use serde::{Deserialize, Serialize};

/// Which §4 allocation strategy backs the synopsis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniform sample of the relation (§4.3).
    House,
    /// Equal space per finest group (§4.4).
    Senate,
    /// max(House, Senate) scaled (§4.5).
    BasicCongress,
    /// Full lattice maximum (§4.6) — the paper's recommendation.
    Congress,
}

impl SamplingStrategy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SamplingStrategy::House => "House",
            SamplingStrategy::Senate => "Senate",
            SamplingStrategy::BasicCongress => "Basic Congress",
            SamplingStrategy::Congress => "Congress",
        }
    }

    /// All four, in the paper's presentation order.
    pub fn all() -> [SamplingStrategy; 4] {
        [
            SamplingStrategy::House,
            SamplingStrategy::Senate,
            SamplingStrategy::BasicCongress,
            SamplingStrategy::Congress,
        ]
    }

    /// Stable lowercase token used by the CLI and the warehouse manifest.
    pub fn token(self) -> &'static str {
        match self {
            SamplingStrategy::House => "house",
            SamplingStrategy::Senate => "senate",
            SamplingStrategy::BasicCongress => "basic",
            SamplingStrategy::Congress => "congress",
        }
    }

    /// Parse a [`Self::token`] back.
    pub fn from_token(token: &str) -> crate::Result<SamplingStrategy> {
        match token {
            "house" => Ok(SamplingStrategy::House),
            "senate" => Ok(SamplingStrategy::Senate),
            "basic" => Ok(SamplingStrategy::BasicCongress),
            "congress" => Ok(SamplingStrategy::Congress),
            other => Err(crate::AquaError::InvalidConfig(format!(
                "unknown strategy `{other}` (house|senate|basic|congress)"
            ))),
        }
    }
}

/// Which §5 physical rewrite executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteChoice {
    /// ScaleFactor column per tuple (Fig 8).
    Integrated,
    /// Nested plan, one multiply per (group × SF) (Fig 11).
    NestedIntegrated,
    /// AuxRel join on grouping columns (Fig 9).
    Normalized,
    /// AuxRel join on integer GID (Fig 10).
    KeyNormalized,
}

impl RewriteChoice {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            RewriteChoice::Integrated => "Integrated",
            RewriteChoice::NestedIntegrated => "Nested-integrated",
            RewriteChoice::Normalized => "Normalized",
            RewriteChoice::KeyNormalized => "Key-normalized",
        }
    }

    /// All four, in the paper's presentation order.
    pub fn all() -> [RewriteChoice; 4] {
        [
            RewriteChoice::Integrated,
            RewriteChoice::NestedIntegrated,
            RewriteChoice::Normalized,
            RewriteChoice::KeyNormalized,
        ]
    }

    /// Stable lowercase token used by the CLI and the warehouse manifest.
    pub fn token(self) -> &'static str {
        match self {
            RewriteChoice::Integrated => "integrated",
            RewriteChoice::NestedIntegrated => "nested",
            RewriteChoice::Normalized => "normalized",
            RewriteChoice::KeyNormalized => "keynorm",
        }
    }

    /// Parse a [`Self::token`] back.
    pub fn from_token(token: &str) -> crate::Result<RewriteChoice> {
        match token {
            "integrated" => Ok(RewriteChoice::Integrated),
            "nested" => Ok(RewriteChoice::NestedIntegrated),
            "normalized" => Ok(RewriteChoice::Normalized),
            "keynorm" => Ok(RewriteChoice::KeyNormalized),
            other => Err(crate::AquaError::InvalidConfig(format!(
                "unknown rewrite `{other}` (integrated|nested|normalized|keynorm)"
            ))),
        }
    }
}

/// Full middleware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AquaConfig {
    /// Synopsis space budget, in tuples (the administrator input of §2).
    pub space: usize,
    /// Allocation strategy.
    pub strategy: SamplingStrategy,
    /// Physical rewrite strategy.
    pub rewrite: RewriteChoice,
    /// Confidence level for error bounds (Aqua's default demo uses 90%).
    pub confidence: f64,
    /// RNG seed for sampling decisions.
    pub seed: u64,
    /// Worker threads for synopsis construction: `0` = use all available
    /// cores, `1` = strictly sequential. Any value produces the identical
    /// synopsis for a given `seed` (per-group RNG streams are derived from
    /// the seed, never from scheduling).
    pub parallelism: usize,
}

impl Default for AquaConfig {
    fn default() -> Self {
        AquaConfig {
            space: 10_000,
            strategy: SamplingStrategy::Congress,
            rewrite: RewriteChoice::NestedIntegrated,
            confidence: 0.9,
            seed: 0x4151_5541, // "AQUA"
            parallelism: 0,
        }
    }
}

impl AquaConfig {
    /// The concrete thread count `parallelism` resolves to (`0` → all
    /// available cores).
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }

    /// Render the configuration as the single-line `k=v;...` form stored
    /// in the warehouse manifest. Round-trips exactly through
    /// [`Self::from_manifest_line`] (floats via bit pattern).
    pub fn to_manifest_line(&self) -> String {
        format!(
            "space={};strategy={};rewrite={};confidence_bits={};seed={};parallelism={}",
            self.space,
            self.strategy.token(),
            self.rewrite.token(),
            self.confidence.to_bits(),
            self.seed,
            self.parallelism
        )
    }

    /// Parse a [`Self::to_manifest_line`] rendering.
    pub fn from_manifest_line(line: &str) -> crate::Result<AquaConfig> {
        let bad = |what: &str| crate::AquaError::InvalidConfig(format!("manifest config: {what}"));
        let mut config = AquaConfig::default();
        let mut seen = 0;
        for part in line.split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| bad(&format!("malformed pair `{part}`")))?;
            match k {
                "space" => config.space = v.parse().map_err(|_| bad("bad space"))?,
                "strategy" => config.strategy = SamplingStrategy::from_token(v)?,
                "rewrite" => config.rewrite = RewriteChoice::from_token(v)?,
                "confidence_bits" => {
                    config.confidence =
                        f64::from_bits(v.parse().map_err(|_| bad("bad confidence"))?)
                }
                "seed" => config.seed = v.parse().map_err(|_| bad("bad seed"))?,
                "parallelism" => {
                    config.parallelism = v.parse().map_err(|_| bad("bad parallelism"))?
                }
                other => return Err(bad(&format!("unknown key `{other}`"))),
            }
            seen += 1;
        }
        if seen != 6 {
            return Err(bad("missing keys"));
        }
        config.validate()?;
        Ok(config)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.space == 0 {
            return Err(crate::AquaError::InvalidConfig(
                "space budget must be positive".into(),
            ));
        }
        if self.confidence.is_nan() || self.confidence <= 0.0 || self.confidence >= 1.0 {
            return Err(crate::AquaError::InvalidConfig(format!(
                "confidence must be in (0, 1), got {}",
                self.confidence
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(AquaConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let c = AquaConfig {
            space: 0,
            ..AquaConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = AquaConfig {
            confidence: 1.0,
            ..AquaConfig::default()
        };
        assert!(c.validate().is_err());
        c.confidence = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_parallelism_resolves_zero_to_cores() {
        let auto = AquaConfig::default();
        assert!(auto.effective_parallelism() >= 1);
        let fixed = AquaConfig {
            parallelism: 3,
            ..AquaConfig::default()
        };
        assert_eq!(fixed.effective_parallelism(), 3);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SamplingStrategy::BasicCongress.name(), "Basic Congress");
        assert_eq!(RewriteChoice::KeyNormalized.name(), "Key-normalized");
        assert_eq!(SamplingStrategy::all().len(), 4);
        assert_eq!(RewriteChoice::all().len(), 4);
    }

    #[test]
    fn tokens_round_trip() {
        for s in SamplingStrategy::all() {
            assert_eq!(SamplingStrategy::from_token(s.token()).unwrap(), s);
        }
        for r in RewriteChoice::all() {
            assert_eq!(RewriteChoice::from_token(r.token()).unwrap(), r);
        }
        assert!(SamplingStrategy::from_token("zzz").is_err());
        assert!(RewriteChoice::from_token("zzz").is_err());
    }

    #[test]
    fn manifest_line_round_trips_exactly() {
        let c = AquaConfig {
            space: 123,
            strategy: SamplingStrategy::Senate,
            rewrite: RewriteChoice::KeyNormalized,
            confidence: 0.95,
            seed: 0xDEAD_BEEF,
            parallelism: 7,
        };
        let line = c.to_manifest_line();
        assert_eq!(AquaConfig::from_manifest_line(&line).unwrap(), c);
        // Corrupt lines are rejected, not misparsed.
        assert!(AquaConfig::from_manifest_line("").is_err());
        assert!(AquaConfig::from_manifest_line("space=1").is_err());
        assert!(AquaConfig::from_manifest_line(&line.replace("seed", "sled")).is_err());
    }
}
