//! Shared experiment harness for regenerating the paper's tables and
//! figures (§7). Each binary in `src/bin/` drives one experiment; this
//! library holds the common machinery: dataset/census setup, plan
//! construction per strategy, error measurement, and table printing.

pub mod harness;
pub mod report;

pub use harness::{
    accuracy_for_strategy, build_plan, construct_parallel, AccuracyResult, ExperimentSetup,
    QuerySet,
};
pub use report::Table;
