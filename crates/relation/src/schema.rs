//! Schemas: ordered, named, typed column lists.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::error::{RelationError, Result};

/// Index of a column within a schema.
///
/// A newtype rather than a bare `usize` so that row indices and column
/// indices cannot be swapped silently at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub usize);

impl ColumnId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within the schema.
    pub name: String,
    /// Column data type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An immutable ordered list of [`Field`]s.
///
/// Wrapped in `Arc` by [`crate::Relation`] so that derived relations
/// (filtered / sampled views materialized as new relations) share the schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RelationError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema {
            fields: fields.into(),
        })
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `id`, or an error if out of range.
    pub fn field(&self, id: ColumnId) -> Result<&Field> {
        self.fields
            .get(id.0)
            .ok_or(RelationError::ColumnIdOutOfRange {
                id: id.0,
                width: self.fields.len(),
            })
    }

    /// Look up a column id by name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(ColumnId)
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// Look up several column ids by name.
    pub fn column_ids(&self, names: &[&str]) -> Result<Vec<ColumnId>> {
        names.iter().map(|n| self.column_id(n)).collect()
    }

    /// Look up a column id by name, falling back to an ASCII
    /// case-insensitive match when no exact match exists.
    ///
    /// SQL identifiers are case-insensitive, and the serving layer's plan
    /// cache folds identifier case when normalizing query text — so name
    /// resolution must accept any casing or two spellings of the same query
    /// would collide on one cache key while resolving differently. An exact
    /// match always wins; a case-insensitive match must be unique or the
    /// lookup fails rather than guessing.
    pub fn column_id_ci(&self, name: &str) -> Result<ColumnId> {
        if let Ok(id) = self.column_id(name) {
            return Ok(id);
        }
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(RelationError::UnknownColumn(format!(
                        "{name} (ambiguous case-insensitive match)"
                    )));
                }
                found = Some(i);
            }
        }
        found
            .map(ColumnId)
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// Data type of the column at `id`.
    pub fn data_type(&self, id: ColumnId) -> Result<DataType> {
        Ok(self.field(id)?.data_type)
    }

    /// A new schema with `extra` fields appended (used by the rewrite layer
    /// to add a ScaleFactor or GID column to a sample relation).
    pub fn with_appended(&self, extra: Vec<Field>) -> Result<Schema> {
        let mut fields: Vec<Field> = self.fields.to_vec();
        fields.extend(extra);
        Schema::new(fields)
    }

    /// A new schema keeping only the given columns, in the given order.
    pub fn project(&self, ids: &[ColumnId]) -> Result<Schema> {
        let fields = ids
            .iter()
            .map(|&id| self.field(id).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = abc();
        assert_eq!(s.width(), 3);
        assert_eq!(s.column_id("b").unwrap(), ColumnId(1));
        assert_eq!(s.data_type(ColumnId(2)).unwrap(), DataType::Float);
        assert!(matches!(
            s.column_id("zz"),
            Err(RelationError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.field(ColumnId(9)),
            Err(RelationError::ColumnIdOutOfRange { id: 9, width: 3 })
        ));
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = abc();
        assert_eq!(s.column_id_ci("B").unwrap(), ColumnId(1));
        assert_eq!(s.column_id_ci("b").unwrap(), ColumnId(1));
        assert!(s.column_id_ci("zz").is_err());

        // Exact match wins over a case-folded one; ambiguity is an error.
        let tricky = Schema::new(vec![
            Field::new("X", DataType::Int),
            Field::new("x", DataType::Str),
            Field::new("Yy", DataType::Int),
            Field::new("yY", DataType::Str),
        ])
        .unwrap();
        assert_eq!(tricky.column_id_ci("x").unwrap(), ColumnId(1));
        assert_eq!(tricky.column_id_ci("X").unwrap(), ColumnId(0));
        assert!(tricky.column_id_ci("yy").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Str),
        ]);
        assert!(matches!(r, Err(RelationError::DuplicateColumn(_))));
    }

    #[test]
    fn append_and_project() {
        let s = abc();
        let s2 = s
            .with_appended(vec![Field::new("sf", DataType::Float)])
            .unwrap();
        assert_eq!(s2.width(), 4);
        assert_eq!(s2.column_id("sf").unwrap(), ColumnId(3));
        // appending a duplicate fails
        assert!(s
            .with_appended(vec![Field::new("a", DataType::Int)])
            .is_err());

        let p = s.project(&[ColumnId(2), ColumnId(0)]).unwrap();
        assert_eq!(p.fields()[0].name, "c");
        assert_eq!(p.fields()[1].name, "a");
    }

    #[test]
    fn column_ids_batch() {
        let s = abc();
        assert_eq!(
            s.column_ids(&["c", "a"]).unwrap(),
            vec![ColumnId(2), ColumnId(0)]
        );
        assert!(s.column_ids(&["a", "nope"]).is_err());
    }

    #[test]
    fn display_lists_fields() {
        let s = abc();
        assert_eq!(s.to_string(), "(a: Int, b: Str, c: Float)");
    }
}
