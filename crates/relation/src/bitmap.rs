//! Packed selection bitmaps.
//!
//! Predicates evaluate to one bit per row rather than one `bool` byte:
//! 64 rows per word means boolean combinators (AND/OR/NOT) run word-at-a-
//! time, and downstream consumers iterate only the *set* bits instead of
//! branching on every row. The invariant maintained throughout is that
//! bits at positions `>= len` are zero, so `count_ones`, equality, and
//! word-wise combinators never see garbage in the trailing word.

use std::fmt;

/// A fixed-length bitmap over row indices `0..len`, packed into `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-false bitmap of `len` bits.
    pub fn new_false(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// All-true bitmap of `len` bits.
    pub fn new_true(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Build from a per-index closure (the vectorized-evaluation entry
    /// point: the closure is inlined into the packing loop).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut words = vec![0u64; len.div_ceil(64)];
        for (w, word) in words.iter_mut().enumerate() {
            let base = w * 64;
            let top = 64.min(len - base);
            let mut acc = 0u64;
            for bit in 0..top {
                acc |= u64::from(f(base + bit)) << bit;
            }
            *word = acc;
        }
        Bitmap { words, len }
    }

    /// Build from an unpacked boolean slice.
    pub fn from_bools(bools: &[bool]) -> Bitmap {
        Bitmap::from_fn(bools.len(), |i| bools[i])
    }

    /// Build from per-row dictionary codes and a per-code lookup table —
    /// the dictionary-domain predicate path: the comparison is decided
    /// once per distinct value and each row just indexes the table.
    pub fn from_lut(codes: &[u32], lut: &[bool]) -> Bitmap {
        Bitmap::from_fn(codes.len(), |i| lut[codes[i] as usize])
    }

    /// Unpack to one `bool` per bit (test/debug convenience).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        (self.words[index >> 6] >> (index & 63)) & 1 != 0
    }

    /// Set bit `index` to `value`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        debug_assert!(index < self.len);
        let mask = 1u64 << (index & 63);
        if value {
            self.words[index >> 6] |= mask;
        } else {
            self.words[index >> 6] &= !mask;
        }
    }

    /// Word-wise `self &= other`. Lengths must match.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-wise `self |= other`. Lengths must match.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Word-wise `self = !self`, keeping trailing bits zero.
    pub fn not_assign(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when at least one bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` when every bit is set (vacuously true for an empty bitmap).
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterator over set-bit indices, ascending.
    pub fn ones(&self) -> Ones<'_> {
        self.ones_range(0, self.len)
    }

    /// Iterator over set-bit indices within `start..end`, ascending.
    pub fn ones_range(&self, start: usize, end: usize) -> Ones<'_> {
        debug_assert!(start <= end && end <= self.len);
        let first_word = start >> 6;
        let current = match self.words.get(first_word) {
            Some(&w) => w & (!0u64 << (start & 63)),
            None => 0,
        };
        Ones {
            words: &self.words,
            next_word: first_word + 1,
            end_word: end.div_ceil(64).min(self.words.len()),
            current,
            base: first_word * 64,
            end,
        }
    }

    /// The packed words (trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({}/{} set)", self.count_ones(), self.len)
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Bitmap {
        let bools: Vec<bool> = iter.into_iter().collect();
        Bitmap::from_bools(&bools)
    }
}

/// Iterator over the set bits of a [`Bitmap`] (see [`Bitmap::ones`]).
pub struct Ones<'a> {
    words: &'a [u64],
    next_word: usize,
    end_word: usize,
    current: u64,
    base: usize,
    end: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let index = self.base + self.current.trailing_zeros() as usize;
                if index >= self.end {
                    return None;
                }
                self.current &= self.current - 1;
                return Some(index);
            }
            if self.next_word >= self.end_word {
                return None;
            }
            self.current = self.words[self.next_word];
            self.base = self.next_word * 64;
            self.next_word += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_get() {
        let b = Bitmap::new_false(70);
        assert_eq!(b.len(), 70);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.any());
        let t = Bitmap::new_true(70);
        assert_eq!(t.count_ones(), 70);
        assert!(t.all() && t.any());
        assert!(t.get(0) && t.get(63) && t.get(64) && t.get(69));
        // Trailing bits stay zero so the word view is canonical.
        assert_eq!(t.words()[1] >> 6, 0);
    }

    #[test]
    fn set_and_from_fn_agree() {
        let n = 131;
        let mut manual = Bitmap::new_false(n);
        for i in (0..n).filter(|i| i % 3 == 0) {
            manual.set(i, true);
        }
        let packed = Bitmap::from_fn(n, |i| i % 3 == 0);
        assert_eq!(manual, packed);
        manual.set(0, false);
        assert_ne!(manual, packed);
        assert!(!manual.get(0));
    }

    #[test]
    fn boolean_ops_match_scalar() {
        let n = 200;
        let a = Bitmap::from_fn(n, |i| i % 2 == 0);
        let b = Bitmap::from_fn(n, |i| i % 3 == 0);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        let mut not = a.clone();
        not.not_assign();
        for i in 0..n {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(not.get(i), !a.get(i));
        }
        // NOT keeps the tail canonical: double negation round-trips.
        let mut back = not.clone();
        back.not_assign();
        assert_eq!(back, a);
    }

    #[test]
    fn ones_iterates_set_bits_in_order() {
        let n = 150;
        let b = Bitmap::from_fn(n, |i| i % 7 == 0 || i == 149);
        let got: Vec<usize> = b.ones().collect();
        let want: Vec<usize> = (0..n).filter(|&i| i % 7 == 0 || i == 149).collect();
        assert_eq!(got, want);
        assert_eq!(b.count_ones(), want.len());
    }

    #[test]
    fn ones_range_respects_bounds() {
        let n = 300;
        let b = Bitmap::from_fn(n, |i| i % 5 == 0);
        for (start, end) in [(0, 0), (0, 300), (13, 200), (64, 128), (63, 65), (295, 300)] {
            let got: Vec<usize> = b.ones_range(start, end).collect();
            let want: Vec<usize> = (start..end).filter(|&i| i % 5 == 0).collect();
            assert_eq!(got, want, "range {start}..{end}");
        }
    }

    #[test]
    fn empty_bitmap_is_sane() {
        let b = Bitmap::new_true(0);
        assert!(b.is_empty() && !b.any() && b.all());
        assert_eq!(b.ones().count(), 0);
        assert_eq!(b.to_bools(), Vec::<bool>::new());
    }

    #[test]
    fn from_lut_translates_codes() {
        let codes = [0u32, 2, 1, 2, 0, 1, 1];
        let lut = [false, true, false];
        let b = Bitmap::from_lut(&codes, &lut);
        let want: Vec<bool> = codes.iter().map(|&c| lut[c as usize]).collect();
        assert_eq!(b.to_bools(), want);
        assert_eq!(Bitmap::from_lut(&[], &lut).len(), 0);
    }

    #[test]
    fn bools_round_trip() {
        let bools = vec![true, false, true, true, false];
        let b = Bitmap::from_bools(&bools);
        assert_eq!(b.to_bools(), bools);
        let collected: Bitmap = bools.iter().copied().collect();
        assert_eq!(collected, b);
    }

    #[test]
    fn debug_is_compact() {
        let b = Bitmap::from_fn(10, |i| i < 3);
        assert_eq!(format!("{b:?}"), "Bitmap(3/10 set)");
    }
}
