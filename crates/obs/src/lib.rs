//! Lock-free runtime metrics for the AQP server: monotonic [`Counter`]s,
//! [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s behind a
//! [`Registry`], with mergeable [`Snapshot`]s rendered as JSON or
//! Prometheus exposition text.
//!
//! Recording is wait-free (relaxed atomic adds on pre-registered handles);
//! the registry lock is only taken to register a metric or take a
//! snapshot. The `obs-off` cargo feature compiles every recording call to
//! a no-op — [`ENABLED`] is `false`, handles still exist and snapshots
//! still render (all zeros) so callers build unchanged on either leg.

mod histogram;
mod registry;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry, Snapshot};

/// `true` when metric recording is compiled in (the default). The
/// `obs-off` feature flips this to `false` and every `record`/`inc`/`set`
/// becomes an empty inlined function the optimizer deletes.
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));

/// Monotonic stopwatch for span timing. Under `obs-off` it never reads
/// the clock and [`Timer::elapsed_us`] returns 0.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    #[cfg(not(feature = "obs-off"))]
    started: std::time::Instant,
}

impl Timer {
    #[inline]
    pub fn start() -> Timer {
        Timer {
            #[cfg(not(feature = "obs-off"))]
            started: std::time::Instant::now(),
        }
    }

    /// Microseconds since [`Timer::start`], saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
        }
        #[cfg(feature = "obs-off")]
        {
            0
        }
    }
}

/// Build a metric name with Prometheus-style labels:
/// `label("aqua_queries_total", &[("served", "summary")])` →
/// `aqua_queries_total{served="summary"}`. Labels are sorted by the
/// caller's ordering (keep it stable so names dedupe in the registry).
pub fn label(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_builds_prometheus_style_names() {
        assert_eq!(label("x_total", &[]), "x_total");
        assert_eq!(label("x_total", &[("a", "b")]), "x_total{a=\"b\"}");
        assert_eq!(
            label("x_total", &[("a", "b"), ("c", "d")]),
            "x_total{a=\"b\",c=\"d\"}"
        );
    }

    #[test]
    fn timer_is_monotone() {
        let t = Timer::start();
        let a = t.elapsed_us();
        let b = t.elapsed_us();
        assert!(b >= a);
    }
}
