//! The logical form of a stratified (biased) sample handed to the rewrite
//! strategies.
//!
//! The congress crate decides *which* rows to sample and at what rate; the
//! engine decides *how* to physically lay them out and execute queries
//! against them. [`StratifiedInput`] is the hand-off type: the sampled rows
//! (as a relation sharing the base schema), a stratum id per sampled row,
//! and a ScaleFactor per stratum (the inverse sampling rate of that
//! stratum, §5.1).

use relation::{ColumnId, GroupKey, Relation};

use crate::error::{EngineError, Result};

/// A materialized stratified sample, pre-physical-layout.
#[derive(Debug, Clone)]
pub struct StratifiedInput {
    /// The sampled tuples, with the base relation's schema.
    pub rows: Relation,
    /// Stratum id of each sampled row (indexes `scale_factors` / `strata_keys`).
    pub stratum_of_row: Vec<u32>,
    /// ScaleFactor of each stratum: `n_g / sampled_g`, the inverse sampling
    /// rate. Strata with no sampled rows may carry any positive placeholder.
    pub scale_factors: Vec<f64>,
    /// Group key of each stratum under the finest grouping.
    pub strata_keys: Vec<GroupKey>,
    /// The finest grouping columns the strata are defined over (the paper's
    /// `G`), as ids into the base schema.
    pub grouping_columns: Vec<ColumnId>,
}

impl StratifiedInput {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.stratum_of_row.len() != self.rows.row_count() {
            return Err(EngineError::InvalidStratifiedInput(format!(
                "{} stratum ids for {} rows",
                self.stratum_of_row.len(),
                self.rows.row_count()
            )));
        }
        if self.scale_factors.len() != self.strata_keys.len() {
            return Err(EngineError::InvalidStratifiedInput(format!(
                "{} scale factors for {} strata keys",
                self.scale_factors.len(),
                self.strata_keys.len()
            )));
        }
        let s = self.scale_factors.len() as u32;
        if let Some(&bad) = self.stratum_of_row.iter().find(|&&i| i >= s) {
            return Err(EngineError::InvalidStratifiedInput(format!(
                "stratum id {bad} out of range ({s} strata)"
            )));
        }
        if let Some((i, &sf)) = self
            .scale_factors
            .iter()
            .enumerate()
            .find(|(_, &sf)| sf <= 0.0 || !sf.is_finite())
        {
            return Err(EngineError::InvalidStratifiedInput(format!(
                "stratum {i} has non-positive or non-finite scale factor {sf}"
            )));
        }
        for &c in &self.grouping_columns {
            self.rows.schema().field(c)?;
        }
        for (i, k) in self.strata_keys.iter().enumerate() {
            if k.len() != self.grouping_columns.len() {
                return Err(EngineError::InvalidStratifiedInput(format!(
                    "stratum {i} key has {} values for {} grouping columns",
                    k.len(),
                    self.grouping_columns.len()
                )));
            }
        }
        Ok(())
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.scale_factors.len()
    }

    /// Per-row scale factors (materialized).
    pub fn row_scale_factors(&self) -> Vec<f64> {
        self.stratum_of_row
            .iter()
            .map(|&s| self.scale_factors[s as usize])
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture used by the rewrite-strategy tests: a small base
    //! relation, a stratified sample over it, and its exact answer.

    use relation::{DataType, Predicate, RelationBuilder, Value};

    use super::*;

    /// Base relation: grouping columns (a: Str, b: Int), aggregate column v.
    /// Groups under (a, b): ("x",1) 4 rows, ("x",2) 2 rows, ("y",1) 2 rows.
    pub fn base() -> Relation {
        let mut bld = RelationBuilder::new()
            .column("a", DataType::Str)
            .column("b", DataType::Int)
            .column("v", DataType::Float);
        let rows: [(&str, i64, f64); 8] = [
            ("x", 1, 1.0),
            ("x", 1, 2.0),
            ("x", 1, 3.0),
            ("x", 1, 4.0),
            ("x", 2, 10.0),
            ("x", 2, 20.0),
            ("y", 1, 100.0),
            ("y", 1, 200.0),
        ];
        for (a, b, v) in rows {
            bld.push_row(&[Value::str(a), Value::Int(b), Value::from(v)])
                .unwrap();
        }
        bld.finish()
    }

    /// A stratified sample: 2 of 4 rows from ("x",1) at SF=2, 1 of 2 from
    /// ("x",2) at SF=2, 2 of 2 from ("y",1) at SF=1.
    pub fn sample() -> StratifiedInput {
        let base = base();
        let sampled = base.gather(&[0, 2, 4, 6, 7]);
        StratifiedInput {
            rows: sampled,
            stratum_of_row: vec![0, 0, 1, 2, 2],
            scale_factors: vec![2.0, 2.0, 1.0],
            strata_keys: vec![
                GroupKey::new(vec![Value::str("x"), Value::Int(1)]),
                GroupKey::new(vec![Value::str("x"), Value::Int(2)]),
                GroupKey::new(vec![Value::str("y"), Value::Int(1)]),
            ],
            grouping_columns: vec![ColumnId(0), ColumnId(1)],
        }
    }

    /// A predicate selecting v >= 3 (drops some sampled rows).
    pub fn pred_v_ge(threshold: f64) -> Predicate {
        Predicate::ge(ColumnId(2), threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::sample;
    use super::*;

    #[test]
    fn valid_fixture_passes() {
        assert!(sample().validate().is_ok());
        assert_eq!(sample().stratum_count(), 3);
    }

    #[test]
    fn row_scale_factors_expand() {
        let s = sample();
        assert_eq!(s.row_scale_factors(), vec![2.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn detects_length_mismatch() {
        let mut s = sample();
        s.stratum_of_row.pop();
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_out_of_range_stratum() {
        let mut s = sample();
        s.stratum_of_row[0] = 99;
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_bad_scale_factor() {
        let mut s = sample();
        s.scale_factors[1] = 0.0;
        assert!(s.validate().is_err());
        let mut s = sample();
        s.scale_factors[1] = f64::INFINITY;
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_key_arity_mismatch() {
        let mut s = sample();
        s.strata_keys[0] = GroupKey::empty();
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_bad_grouping_column() {
        let mut s = sample();
        s.grouping_columns.push(ColumnId(42));
        assert!(s.validate().is_err());
    }
}
