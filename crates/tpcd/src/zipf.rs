//! Zipf distributions, used for both group-size skew and aggregate-value
//! skew (§7.1.1): "This was done using the Zipf distribution, which is
//! known to accurately model several real-life distributions."

use rand::Rng;

/// A Zipf(z) distribution over ranks `1..=n`: rank `i` has probability
/// proportional to `1 / i^z`. `z = 0` is uniform; `z = 0.86` yields the
/// 90-10 rule the paper fixes for aggregate columns; `z = 1.5` is the most
/// skewed group-size setting in Table 1.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(rank ≤ i+1)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n ≥ 1` ranks with skew `z ≥ 0`.
    pub fn new(n: usize, z: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            z >= 0.0 && z.is_finite(),
            "Zipf skew must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).powf(-z);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against fp drift at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `i` (1-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&i));
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }
}

/// Deterministic group sizes: split `total` tuples over `n` groups in Zipf
/// proportions, guaranteeing every group at least one tuple (the census
/// only tracks non-empty groups) and conserving the total exactly via
/// largest-remainder rounding.
pub fn zipf_sizes(n: usize, total: u64, z: f64) -> Vec<u64> {
    assert!(
        n >= 1 && total >= n as u64,
        "need at least one tuple per group"
    );
    let zipf = Zipf::new(n, z);
    let spare = total - n as u64; // one tuple pre-reserved per group
    let quota: Vec<f64> = (1..=n).map(|i| zipf.pmf(i) * spare as f64).collect();
    let mut sizes: Vec<u64> = quota.iter().map(|&q| 1 + q.floor() as u64).collect();
    let mut have: u64 = sizes.iter().sum();
    // Distribute the remaining units by largest fractional remainder.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = quota[a] - quota[a].floor();
        let rb = quota[b] - quota[b].floor();
        rb.total_cmp(&ra)
    });
    let mut i = 0;
    while have < total {
        sizes[order[i % n]] += 1;
        have += 1;
        i += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 1..=10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing_and_normalized() {
        let z = Zipf::new(100, 1.5);
        let mut total = 0.0;
        for i in 1..=100 {
            total += z.pmf(i);
            if i > 1 {
                assert!(z.pmf(i) <= z.pmf(i - 1));
            }
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn z086_is_roughly_90_10() {
        // The paper uses z = 0.86 "because it results in a 90-10
        // distribution": the top ~10% of ranks carry most of the mass.
        let n = 1000;
        let z = Zipf::new(n, 0.86);
        let top10: f64 = (1..=n / 10).map(|i| z.pmf(i)).sum();
        assert!(top10 > 0.55, "top decile carries {top10}");
        // and far more than its uniform share of 10%
        let uniform = Zipf::new(n, 0.0);
        let flat10: f64 = (1..=n / 10).map(|i| uniform.pmf(i)).sum();
        assert!(top10 > 5.0 * flat10);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(79);
        let mut hits = [0u32; 5];
        let trials = 200_000;
        for _ in 0..trials {
            hits[z.sample(&mut rng) - 1] += 1;
        }
        for i in 1..=5 {
            let freq = hits[i - 1] as f64 / trials as f64;
            assert!(
                (freq - z.pmf(i)).abs() < 0.01,
                "rank {i}: {freq} vs {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn sizes_conserve_total_and_min_one() {
        for z in [0.0, 0.86, 1.5] {
            let sizes = zipf_sizes(100, 10_000, z);
            assert_eq!(sizes.len(), 100);
            assert_eq!(sizes.iter().sum::<u64>(), 10_000);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn sizes_skew_grows_with_z() {
        let flat = zipf_sizes(50, 5_000, 0.0);
        let skewed = zipf_sizes(50, 5_000, 1.5);
        assert!(skewed[0] > flat[0] * 5);
        assert!(*skewed.last().unwrap() < *flat.last().unwrap());
        // z = 0 is (nearly) equal sizes.
        assert!(flat.iter().max().unwrap() - flat.iter().min().unwrap() <= 1);
    }

    #[test]
    fn tight_budget_gives_all_ones() {
        let sizes = zipf_sizes(7, 7, 1.5);
        assert_eq!(sizes, vec![1; 7]);
    }

    #[test]
    #[should_panic(expected = "at least one tuple per group")]
    fn rejects_budget_below_group_count() {
        let _ = zipf_sizes(10, 5, 1.0);
    }
}
