//! Eager, ordered parallel iterator.

use crate::current_num_threads;

/// Split `items` into one chunk per thread, run `f` over every item on
/// scoped workers, and reassemble results in input order.
fn execute<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().max(1);
    let n = items.len();
    if threads == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let per_chunk: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// An eager parallel iterator: adapters that do real work run immediately
/// across threads, preserving input order.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: execute(self.items, f),
        }
    }

    /// Apply `f` in parallel, keeping `Some` results (order preserved).
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: execute(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Keep items passing the predicate.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        self.filter_map(move |t| if f(&t) { Some(t) } else { None })
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        execute(self.items, f);
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Gather results (work already happened in the parallel adapters).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Fold to a single value (sequential tail; upstream stages did the
    /// parallel work).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Compatibility no-op (chunking granularity is fixed per thread).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(usize, u32, u64, i32, i64);

/// `par_iter()` — parallel iteration over `&self`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterate by reference.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` — parallel iteration over `&mut self`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (a mutable reference).
    type Item: Send;
    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        self.into_par_iter()
    }
}
