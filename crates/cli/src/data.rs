//! Data-source resolution: CSV file or the built-in demo generator.

use std::fs::File;
use std::io::BufReader;

use relation::{ColumnId, CsvOptions, Relation};
use tpcd::{GeneratorConfig, TpcdDataset};

use crate::args::Args;
use crate::{err, Result};

/// A resolved data source: the table, its display name (for SQL `FROM`),
/// and the dimensional columns.
pub struct Source {
    /// The loaded/generated table.
    pub relation: Relation,
    /// Table name shown in messages (CSV stem or "lineitem").
    pub name: String,
    /// The grouping columns `G`.
    pub grouping: Vec<ColumnId>,
}

/// Load the data source selected by `--csv` or `--demo`.
pub fn load(args: &Args) -> Result<Source> {
    match (args.get("csv"), args.has("demo")) {
        (Some(path), false) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let relation =
                relation::read_csv(BufReader::new(file), &CsvOptions::default()).map_err(err)?;
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            let grouping = resolve_grouping(args, &relation, None)?;
            Ok(Source {
                relation,
                name,
                grouping,
            })
        }
        (None, true) => {
            let config = GeneratorConfig {
                table_size: args.get_parsed("rows", 100_000usize)?,
                num_groups: args.get_parsed("groups", 125usize)?,
                group_skew: args.get_parsed("skew", 0.86f64)?,
                agg_skew: 0.86,
                seed: args.get_parsed("seed", 0u64)?,
            };
            let ds = TpcdDataset::generate(config);
            let default = ds.grouping_columns();
            let grouping = resolve_grouping(args, &ds.relation, Some(default))?;
            Ok(Source {
                relation: ds.relation,
                name: "lineitem".to_string(),
                grouping,
            })
        }
        (Some(_), true) => Err("choose either --csv or --demo, not both".into()),
        (None, false) => Err("no data source: pass --csv <FILE> or --demo".into()),
    }
}

fn resolve_grouping(
    args: &Args,
    relation: &Relation,
    default: Option<Vec<ColumnId>>,
) -> Result<Vec<ColumnId>> {
    match args.get_list("group-by") {
        Some(names) => {
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            relation.schema().column_ids(&refs).map_err(err)
        }
        None => default.ok_or_else(|| "missing required flag --group-by".to_string()),
    }
}

/// Parse the `--strategy` flag (tokens shared with the warehouse
/// manifest via [`aqua::SamplingStrategy::from_token`]).
pub fn strategy(args: &Args) -> Result<aqua::SamplingStrategy> {
    aqua::SamplingStrategy::from_token(args.get("strategy").unwrap_or("congress"))
        .map_err(|e| format!("--strategy: {e}"))
}

/// Parse the `--rewrite` flag (tokens shared with the warehouse manifest
/// via [`aqua::RewriteChoice::from_token`]).
pub fn rewrite(args: &Args) -> Result<aqua::RewriteChoice> {
    aqua::RewriteChoice::from_token(args.get("rewrite").unwrap_or("nested"))
        .map_err(|e| format!("--rewrite: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn demo_source_with_default_grouping() {
        let a = args(&["plan", "--demo", "--rows", "5000", "--groups", "27"]);
        let s = load(&a).unwrap();
        assert_eq!(s.relation.row_count(), 5000);
        assert_eq!(s.grouping.len(), 3);
        assert_eq!(s.name, "lineitem");
    }

    #[test]
    fn demo_grouping_override() {
        let a = args(&[
            "plan",
            "--demo",
            "--rows",
            "5000",
            "--groups",
            "27",
            "--group-by",
            "l_returnflag",
        ]);
        let s = load(&a).unwrap();
        assert_eq!(s.grouping.len(), 1);
    }

    #[test]
    fn csv_source_round_trip() {
        let dir = std::env::temp_dir().join("congress_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "g,v\na,1\nb,2\na,3\n").unwrap();
        let a = args(&[
            "inspect",
            "--csv",
            path.to_str().unwrap(),
            "--group-by",
            "g",
        ]);
        let s = load(&a).unwrap();
        assert_eq!(s.relation.row_count(), 3);
        assert_eq!(s.name, "mini");
        assert_eq!(s.grouping.len(), 1);
    }

    #[test]
    fn source_errors() {
        assert!(load(&args(&["plan"])).is_err());
        assert!(load(&args(&["plan", "--csv", "x.csv", "--demo"])).is_err());
        assert!(load(&args(&[
            "plan",
            "--csv",
            "/nonexistent/x.csv",
            "--group-by",
            "g"
        ]))
        .is_err());
        // CSV without --group-by
        let dir = std::env::temp_dir().join("congress_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini2.csv");
        std::fs::write(&path, "g,v\na,1\n").unwrap();
        assert!(load(&args(&["plan", "--csv", path.to_str().unwrap()])).is_err());
    }

    #[test]
    fn strategy_and_rewrite_flags() {
        assert_eq!(
            strategy(&args(&["q"])).unwrap(),
            aqua::SamplingStrategy::Congress
        );
        assert_eq!(
            strategy(&args(&["q", "--strategy", "house"])).unwrap(),
            aqua::SamplingStrategy::House
        );
        assert!(strategy(&args(&["q", "--strategy", "zzz"])).is_err());
        assert_eq!(
            rewrite(&args(&["q", "--rewrite", "keynorm"])).unwrap(),
            aqua::RewriteChoice::KeyNormalized
        );
        assert!(rewrite(&args(&["q", "--rewrite", "zzz"])).is_err());
    }
}
