//! Integration: §6 one-pass construction and incremental maintenance
//! produce samples statistically equivalent to census-based construction,
//! and keep answering correctly as the data drifts.

use congress::alloc::{AllocationStrategy, Congress, Senate};
use congress::build::{
    construct_one_pass, BasicCongressMaintainer, CongressMaintainer, IncrementalMaintainer,
    OnePassStrategy, SenateMaintainer,
};
use congress::GroupCensus;
use engine::rewrite::{Integrated, SamplePlan};
use engine::{execute_exact, GroupByQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::GroupKey;
use tpcd::{q_g3, GeneratorConfig, TpcdDataset};

fn dataset(seed: u64) -> TpcdDataset {
    TpcdDataset::generate(GeneratorConfig {
        table_size: 30_000,
        num_groups: 27,
        group_skew: 1.2,
        agg_skew: 0.86,
        seed,
    })
}

#[test]
fn one_pass_senate_matches_census_allocation() {
    let ds = dataset(61);
    let cols = ds.grouping_columns();
    let census = GroupCensus::build(&ds.relation, &cols).unwrap();
    let space = 2_700usize;

    let mut rng = StdRng::seed_from_u64(1);
    let one_pass = construct_one_pass(
        &ds.relation,
        &cols,
        OnePassStrategy::Senate,
        space,
        &mut rng,
    )
    .unwrap();
    let alloc = Senate.allocate(&census, space as f64).unwrap();
    let target_counts = alloc.integer_counts(census.sizes());

    // Match strata by key and compare counts (both should be X/m, capped).
    let total_target: usize = target_counts.iter().sum();
    assert!((one_pass.total_sampled() as i64 - total_target as i64).abs() <= 27);
    for (g, key) in census.keys().iter().enumerate() {
        let op = one_pass
            .strata_keys()
            .iter()
            .position(|k| k == key)
            .expect("one-pass saw every group");
        let got = one_pass.sampled_rows()[op].len();
        assert!(
            (got as i64 - target_counts[g] as i64).abs() <= 1,
            "group {key}: one-pass {got} vs census {}",
            target_counts[g]
        );
    }
}

#[test]
fn one_pass_congress_tracks_eq5_targets_in_expectation() {
    let ds = dataset(62);
    let cols = ds.grouping_columns();
    let census = GroupCensus::build(&ds.relation, &cols).unwrap();
    let space = 2_100.0;
    let alloc = Congress.allocate(&census, space).unwrap();

    let trials = 12u64;
    let mut avg: std::collections::HashMap<GroupKey, f64> = std::collections::HashMap::new();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(100 + t);
        let s = construct_one_pass(
            &ds.relation,
            &cols,
            OnePassStrategy::Congress,
            space as usize,
            &mut rng,
        )
        .unwrap();
        for (g, key) in s.strata_keys().iter().enumerate() {
            *avg.entry(key.clone()).or_insert(0.0) +=
                s.sampled_rows()[g].len() as f64 / trials as f64;
        }
    }
    // Compare only the larger strata (small ones are noisy at 12 trials).
    for (g, key) in census.keys().iter().enumerate() {
        let target = alloc.targets()[g];
        if target < 30.0 {
            continue;
        }
        let got = avg.get(key).copied().unwrap_or(0.0);
        assert!(
            (got - target).abs() < target * 0.35,
            "group {key}: one-pass avg {got} vs Eq-5 target {target}"
        );
    }
}

#[test]
fn maintainers_survive_distribution_drift() {
    // Stream phase 1 (3 groups), then phase 2 doubles the data with 3 NEW
    // groups; the samples must cover all 6 groups afterwards.
    let mut rng = StdRng::seed_from_u64(77);
    let key = |v: i64| GroupKey::new(vec![relation::Value::Int(v)]);

    let mut senate = SenateMaintainer::new(120);
    let mut basic = BasicCongressMaintainer::new(120);
    let mut congress = CongressMaintainer::new(1, 120.0);

    let mut row = 0usize;
    for phase in 0..2 {
        for i in 0..6_000usize {
            let g = (i % 3) as i64 + phase * 3;
            senate.insert(row, &key(g), &mut rng);
            basic.insert(row, &key(g), &mut rng);
            congress.insert(row, &key(g), &mut rng);
            row += 1;
        }
    }

    for (name, sample) in [
        ("senate", senate.snapshot(&mut rng).unwrap()),
        ("basic", basic.snapshot(&mut rng).unwrap()),
        ("congress", congress.snapshot(&mut rng).unwrap()),
    ] {
        assert_eq!(sample.stratum_count(), 6, "{name} must know all 6 groups");
        for g in 0..6 {
            let idx = sample
                .strata_keys()
                .iter()
                .position(|k| k == &key(g))
                .unwrap();
            assert!(
                !sample.sampled_rows()[idx].is_empty(),
                "{name}: group {g} has no sample tuples after drift"
            );
        }
        // Group sizes must be exact stream counts.
        assert_eq!(sample.group_sizes().iter().sum::<u64>(), 12_000, "{name}");
    }
}

#[test]
fn maintained_sample_answers_queries_about_new_data() {
    // End-to-end drift: build on the first half, maintain through the
    // second half, and verify the final sample answers the finest-group
    // query over the FULL table with every group present.
    let ds = dataset(63);
    let cols = ds.grouping_columns();
    let half = ds.relation.row_count() / 2;

    let mut rng = StdRng::seed_from_u64(55);
    let mut maintainer = SenateMaintainer::new(2_000);
    for r in 0..ds.relation.row_count() {
        let k = GroupKey::from_row(&ds.relation, r, &cols);
        maintainer.insert(r, &k, &mut rng);
        if r == half {
            // Mid-stream snapshot must already be usable.
            let snap = maintainer.snapshot(&mut rng).unwrap();
            assert!(snap.total_sampled() > 0);
        }
    }
    let mut sample = maintainer.snapshot(&mut rng).unwrap();
    sample.set_grouping_columns(cols.clone());
    let input = sample.to_stratified_input(&ds.relation).unwrap();
    let plan = Integrated::build(&input).unwrap();

    let q: GroupByQuery = q_g3(&ds.ids);
    let exact = execute_exact(&ds.relation, &q).unwrap();
    let approx = plan.execute(&q).unwrap();
    let report = congress::compare_results(&exact, &approx, 0, 100.0);
    assert_eq!(report.missing_groups, 0);
    assert!(report.l1() < 30.0, "mean error {}%", report.l1());
}
