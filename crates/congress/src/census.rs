//! The group census: per-group counts at the finest grouping, plus the
//! super-group structure for every coarser grouping `T ⊆ G`.
//!
//! This is the information the paper assumes is available from "a data cube
//! of the counts of each group in all possible groupings" (§6). All
//! allocation strategies consume a census rather than a relation, so the
//! scale-down-factor analysis (§4.6) can run on synthetic censuses far too
//! large to materialize as rows.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use engine::GroupIndex;
use relation::{ColumnId, GroupKey, Relation};

use crate::error::{CongressError, Result};
use crate::lattice::Grouping;

/// Counts of every non-empty group at the finest grouping `G`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupCensus {
    grouping_columns: Vec<ColumnId>,
    keys: Vec<GroupKey>,
    sizes: Vec<u64>,
    total: u64,
    /// Finest group id per relation row; present only when built from a
    /// relation (needed to draw actual samples).
    group_of_row: Option<Vec<u32>>,
}

/// The structure of a coarser grouping `T ⊆ G` relative to the finest
/// grouping: how many groups `T` has, which `T`-group each finest group
/// belongs to, and each `T`-group's size.
#[derive(Debug, Clone)]
pub struct SupergroupView {
    /// `m_T`: number of non-empty groups under `T`.
    pub group_count: usize,
    /// For each finest group `g`, the id of its super-group `h` under `T`.
    pub supergroup_of: Vec<u32>,
    /// `n_h` for each super-group id.
    pub sizes: Vec<u64>,
}

impl GroupCensus {
    /// Take the census of `rel` over grouping columns `cols` (the paper's
    /// `G`). One pass over the relation.
    pub fn build(rel: &Relation, cols: &[ColumnId]) -> Result<GroupCensus> {
        for &c in cols {
            rel.schema().field(c)?;
        }
        if rel.is_empty() {
            return Err(CongressError::EmptyRelation);
        }
        let index = GroupIndex::build(rel, cols);
        let sizes: Vec<u64> = index.group_sizes().into_iter().map(|s| s as u64).collect();
        Ok(GroupCensus {
            grouping_columns: cols.to_vec(),
            keys: index.keys().to_vec(),
            sizes,
            total: rel.row_count() as u64,
            group_of_row: Some(index.group_ids().to_vec()),
        })
    }

    /// Parallel [`Self::build`]: the census over `cols` using the sharded
    /// parallel group index ([`GroupIndex::par_build`]). The result is
    /// identical to the sequential census for any thread count — group ids
    /// are assigned by global first-occurrence row either way.
    pub fn par_build(rel: &Relation, cols: &[ColumnId]) -> Result<GroupCensus> {
        for &c in cols {
            rel.schema().field(c)?;
        }
        if rel.is_empty() {
            return Err(CongressError::EmptyRelation);
        }
        let index = GroupIndex::par_build(rel, cols);
        let sizes: Vec<u64> = index.group_sizes().into_iter().map(|s| s as u64).collect();
        Ok(GroupCensus {
            grouping_columns: cols.to_vec(),
            keys: index.keys().to_vec(),
            sizes,
            total: rel.row_count() as u64,
            group_of_row: Some(index.group_ids().to_vec()),
        })
    }

    /// Build a census directly from known counts — for synthetic analyses
    /// (e.g. the Eq-7 pathological distribution) where materializing rows is
    /// infeasible. Samples cannot be drawn from such a census.
    pub fn from_counts(
        grouping_columns: Vec<ColumnId>,
        keys: Vec<GroupKey>,
        sizes: Vec<u64>,
    ) -> Result<GroupCensus> {
        if keys.len() != sizes.len() {
            return Err(CongressError::CensusMismatch(format!(
                "{} keys vs {} sizes",
                keys.len(),
                sizes.len()
            )));
        }
        if keys.is_empty() || sizes.contains(&0) {
            return Err(CongressError::CensusMismatch(
                "census requires at least one group and all sizes positive".into(),
            ));
        }
        for k in &keys {
            if k.len() != grouping_columns.len() {
                return Err(CongressError::CensusMismatch(format!(
                    "key arity {} vs {} grouping columns",
                    k.len(),
                    grouping_columns.len()
                )));
            }
        }
        let total = sizes.iter().sum();
        Ok(GroupCensus {
            grouping_columns,
            keys,
            sizes,
            total,
            group_of_row: None,
        })
    }

    /// The grouping columns `G` (ids into the base relation's schema).
    pub fn grouping_columns(&self) -> &[ColumnId] {
        &self.grouping_columns
    }

    /// Number of grouping attributes `|G|`.
    pub fn attribute_count(&self) -> usize {
        self.grouping_columns.len()
    }

    /// Number of non-empty finest groups (`|𝒢|`, i.e. `m_G`).
    pub fn group_count(&self) -> usize {
        self.keys.len()
    }

    /// Finest group keys, indexed by finest group id.
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// `n_g` for each finest group.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// `|R|`: total number of tuples.
    pub fn total_rows(&self) -> u64 {
        self.total
    }

    /// Finest group id per relation row, if built from a relation.
    pub fn group_of_row(&self) -> Option<&[u32]> {
        self.group_of_row.as_deref()
    }

    /// Row indices of each finest group (requires a relation-built census).
    pub fn rows_by_group(&self) -> Result<Vec<Vec<usize>>> {
        let gor = self.group_of_row.as_ref().ok_or_else(|| {
            CongressError::CensusMismatch("census built from counts has no row mapping".into())
        })?;
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.keys.len()];
        for (r, &g) in gor.iter().enumerate() {
            out[g as usize].push(r);
        }
        Ok(out)
    }

    /// The super-group structure under grouping `T` (positions refer to
    /// `grouping_columns` order).
    ///
    /// `T = ∅` yields the single all-rows group; `T = G` is the identity.
    pub fn supergroups(&self, t: Grouping) -> SupergroupView {
        let k = self.attribute_count();
        debug_assert!(t.is_subset_of(Grouping::full(k)));

        if t.is_empty() {
            return SupergroupView {
                group_count: 1,
                supergroup_of: vec![0; self.keys.len()],
                sizes: vec![self.total],
            };
        }
        if t == Grouping::full(k) {
            return SupergroupView {
                group_count: self.keys.len(),
                supergroup_of: (0..self.keys.len() as u32).collect(),
                sizes: self.sizes.clone(),
            };
        }

        let positions = t.positions();
        let mut map: HashMap<GroupKey, u32> = HashMap::new();
        let mut supergroup_of = Vec::with_capacity(self.keys.len());
        let mut sizes: Vec<u64> = Vec::new();
        for (g, key) in self.keys.iter().enumerate() {
            let hkey = key.project(&positions);
            let next = map.len() as u32;
            let hid = *map.entry(hkey).or_insert_with(|| {
                sizes.push(0);
                next
            });
            sizes[hid as usize] += self.sizes[g];
            supergroup_of.push(hid);
        }
        SupergroupView {
            group_count: sizes.len(),
            supergroup_of,
            sizes,
        }
    }

    /// `m_T` for every `T ⊆ G`, indexed by grouping bitmask. Used by the
    /// Eq-8 per-tuple probability formula and its maintainer.
    pub fn group_counts_per_grouping(&self) -> Vec<usize> {
        crate::lattice::all_groupings(self.attribute_count())
            .map(|t| self.supergroups(t).group_count)
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use relation::{DataType, RelationBuilder, Value};

    use super::*;

    /// The paper's Figure 5 relation: groups (a1,b1)=3000, (a1,b2)=3000,
    /// (a1,b3)=1500, (a2,b3)=2500, scaled down by `scale` to keep tests
    /// fast (proportions preserved).
    pub fn figure5_relation(scale: u64) -> Relation {
        let mut b = RelationBuilder::new()
            .column("A", DataType::Str)
            .column("B", DataType::Str)
            .column("q", DataType::Float);
        let spec: [(&str, &str, u64); 4] = [
            ("a1", "b1", 3000 / scale),
            ("a1", "b2", 3000 / scale),
            ("a1", "b3", 1500 / scale),
            ("a2", "b3", 2500 / scale),
        ];
        let mut i = 0u64;
        for (a, bb, n) in spec {
            for _ in 0..n {
                b.push_row(&[Value::str(a), Value::str(bb), Value::from(i as f64)])
                    .unwrap();
                i += 1;
            }
        }
        b.finish()
    }

    pub fn figure5_census(scale: u64) -> GroupCensus {
        let rel = figure5_relation(scale);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        GroupCensus::build(&rel, &cols).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use relation::Value;

    #[test]
    fn builds_figure5_counts() {
        let c = figure5_census(10);
        assert_eq!(c.group_count(), 4);
        assert_eq!(c.total_rows(), 1000);
        let mut sizes = c.sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![150, 250, 300, 300]);
        assert_eq!(c.attribute_count(), 2);
    }

    #[test]
    fn supergroups_empty_grouping() {
        let c = figure5_census(10);
        let v = c.supergroups(Grouping::EMPTY);
        assert_eq!(v.group_count, 1);
        assert_eq!(v.sizes, vec![1000]);
        assert!(v.supergroup_of.iter().all(|&h| h == 0));
    }

    #[test]
    fn supergroups_full_grouping_is_identity() {
        let c = figure5_census(10);
        let v = c.supergroups(Grouping::full(2));
        assert_eq!(v.group_count, 4);
        assert_eq!(v.sizes, c.sizes());
        for (g, &h) in v.supergroup_of.iter().enumerate() {
            assert_eq!(g as u32, h);
        }
    }

    #[test]
    fn supergroups_on_a() {
        let c = figure5_census(10);
        // positions: A is position 0 in grouping columns
        let v = c.supergroups(Grouping::from_positions(&[0]));
        assert_eq!(v.group_count, 2); // a1, a2
        let mut sizes = v.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![250, 750]); // a2 = 250, a1 = 750
                                           // All three a1 subgroups map to the same supergroup.
        let a1_groups: Vec<u32> = c
            .keys()
            .iter()
            .enumerate()
            .filter(|(_, k)| k.values()[0] == Value::str("a1"))
            .map(|(g, _)| v.supergroup_of[g])
            .collect();
        assert!(a1_groups.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn supergroups_on_b() {
        let c = figure5_census(10);
        let v = c.supergroups(Grouping::from_positions(&[1]));
        assert_eq!(v.group_count, 3); // b1, b2, b3
        let mut sizes = v.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![300, 300, 400]); // b3 = 150+250
    }

    #[test]
    fn group_counts_per_grouping_lattice() {
        let c = figure5_census(10);
        let m = c.group_counts_per_grouping();
        // masks: 0=∅, 1={A}, 2={B}, 3={A,B}
        assert_eq!(m, vec![1, 2, 3, 4]);
    }

    #[test]
    fn rows_by_group_round_trip() {
        let c = figure5_census(10);
        let rows = c.rows_by_group().unwrap();
        assert_eq!(rows.iter().map(Vec::len).sum::<usize>(), 1000);
        for (g, rs) in rows.iter().enumerate() {
            assert_eq!(rs.len() as u64, c.sizes()[g]);
        }
    }

    #[test]
    fn from_counts_census() {
        let keys = vec![
            GroupKey::new(vec![Value::Int(1)]),
            GroupKey::new(vec![Value::Int(2)]),
        ];
        let c = GroupCensus::from_counts(vec![ColumnId(0)], keys, vec![70, 30]).unwrap();
        assert_eq!(c.total_rows(), 100);
        assert!(c.group_of_row().is_none());
        assert!(c.rows_by_group().is_err());
    }

    #[test]
    fn from_counts_validation() {
        let keys = vec![GroupKey::new(vec![Value::Int(1)])];
        assert!(GroupCensus::from_counts(vec![ColumnId(0)], keys.clone(), vec![]).is_err());
        assert!(GroupCensus::from_counts(vec![ColumnId(0)], keys.clone(), vec![0]).is_err());
        assert!(GroupCensus::from_counts(vec![ColumnId(0)], vec![], vec![]).is_err());
        // arity mismatch
        assert!(GroupCensus::from_counts(vec![ColumnId(0), ColumnId(1)], keys, vec![5]).is_err());
    }

    #[test]
    fn empty_relation_rejected() {
        let rel = figure5_relation(10).gather(&[]);
        let cols = rel.schema().column_ids(&["A", "B"]).unwrap();
        assert_eq!(
            GroupCensus::build(&rel, &cols).unwrap_err(),
            CongressError::EmptyRelation
        );
    }
}
