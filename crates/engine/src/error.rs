//! Engine error type.

use std::fmt;

use relation::RelationError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced while planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying storage/schema error.
    Relation(RelationError),
    /// A query referenced no aggregates.
    NoAggregates,
    /// An aggregate needed an expression but none was supplied (or vice versa).
    MalformedAggregate(&'static str),
    /// Stratified input was internally inconsistent.
    InvalidStratifiedInput(String),
    /// A join key column was missing from one side.
    JoinKeyMismatch(String),
    /// SQL text could not be tokenized or parsed.
    Sql(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Relation(e) => write!(f, "relation error: {e}"),
            EngineError::NoAggregates => write!(f, "query has no aggregates"),
            EngineError::MalformedAggregate(m) => write!(f, "malformed aggregate: {m}"),
            EngineError::InvalidStratifiedInput(m) => {
                write!(f, "invalid stratified input: {m}")
            }
            EngineError::JoinKeyMismatch(m) => write!(f, "join key mismatch: {m}"),
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for EngineError {
    fn from(e: RelationError) -> Self {
        EngineError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_relation_errors() {
        let e: EngineError = RelationError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(EngineError::NoAggregates
            .to_string()
            .contains("no aggregates"));
        assert!(EngineError::JoinKeyMismatch("gid".into())
            .to_string()
            .contains("gid"));
    }
}
