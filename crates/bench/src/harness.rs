//! Experiment machinery shared by the per-figure binaries.

use rand::rngs::StdRng;
use rand::SeedableRng;

use aqua::{RewriteChoice, SamplingStrategy};
use congress::alloc::{AllocationStrategy, BasicCongress, Congress, House, Senate};
use congress::{compare_results, CongressionalSample, GroupCensus, SeedSpec};
use engine::rewrite::{Integrated, KeyNormalized, NestedIntegrated, Normalized, SamplePlan};
use engine::{execute_exact, GroupByQuery, QueryResult};
use relation::{ColumnId, Relation};
use tpcd::{q_g0_set, q_g2, q_g3, GeneratorConfig, TpcdDataset};

/// A generated dataset with its census and the paper's three query sets.
pub struct ExperimentSetup {
    /// The lineitem table.
    pub dataset: TpcdDataset,
    /// Census over `{l_returnflag, l_linestatus, l_shipdate}`.
    pub census: GroupCensus,
    /// `Q_{g2}` (two grouping columns).
    pub qg2: GroupByQuery,
    /// `Q_{g3}` (finest grouping).
    pub qg3: GroupByQuery,
    /// The 20-query `Q_{g0}` set.
    pub qg0: Vec<GroupByQuery>,
}

impl ExperimentSetup {
    /// Generate a dataset and take its census. `c` for the `Q_{g0}` range
    /// width follows the paper: 7% of the table.
    pub fn new(config: GeneratorConfig) -> ExperimentSetup {
        let dataset = TpcdDataset::generate(config);
        let census = GroupCensus::build(&dataset.relation, &dataset.grouping_columns())
            .expect("generated table is non-empty");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9);
        let c = (config.table_size as i64 * 7 / 100).max(1);
        let qg0 = q_g0_set(&dataset.ids, 20, config.table_size, c, &mut rng);
        ExperimentSetup {
            qg2: q_g2(&dataset.ids),
            qg3: q_g3(&dataset.ids),
            qg0,
            dataset,
            census,
        }
    }
}

/// Which query set an accuracy number is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySet {
    /// 20 no-group-by range queries.
    Qg0,
    /// Two grouping columns.
    Qg2,
    /// Three grouping columns (finest).
    Qg3,
}

impl QuerySet {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            QuerySet::Qg0 => "Qg0",
            QuerySet::Qg2 => "Qg2",
            QuerySet::Qg3 => "Qg3",
        }
    }
}

/// Build a congressional sample via the parallel construction pipeline
/// (parallel census + per-stratum seeded draws) on `threads` worker
/// threads (`0` = all cores). The output is identical for any thread
/// count: per-group RNG streams are derived from `seed` via [`SeedSpec`],
/// never from scheduling — so sequential/parallel timings from this
/// helper compare like for like.
pub fn construct_parallel(
    rel: &Relation,
    cols: &[ColumnId],
    strategy: &dyn AllocationStrategy,
    space: f64,
    seed: u64,
    threads: usize,
) -> CongressionalSample {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        let census = GroupCensus::par_build(rel, cols).expect("non-empty relation");
        let spec = SeedSpec::new(seed);
        CongressionalSample::draw_par(rel, &census, strategy, space, &spec)
            .expect("valid allocation")
    })
}

/// Build a physical plan for a sampling strategy at a given sample
/// fraction, using the census-based construction route.
pub fn build_plan(
    setup: &ExperimentSetup,
    strategy: SamplingStrategy,
    rewrite: RewriteChoice,
    sample_fraction: f64,
    seed: u64,
) -> Box<dyn SamplePlan> {
    let space = sample_fraction * setup.dataset.relation.row_count() as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = match strategy {
        SamplingStrategy::House => CongressionalSample::draw(
            &setup.dataset.relation,
            &setup.census,
            &House,
            space,
            &mut rng,
        ),
        SamplingStrategy::Senate => CongressionalSample::draw(
            &setup.dataset.relation,
            &setup.census,
            &Senate,
            space,
            &mut rng,
        ),
        SamplingStrategy::BasicCongress => CongressionalSample::draw(
            &setup.dataset.relation,
            &setup.census,
            &BasicCongress,
            space,
            &mut rng,
        ),
        SamplingStrategy::Congress => CongressionalSample::draw(
            &setup.dataset.relation,
            &setup.census,
            &Congress,
            space,
            &mut rng,
        ),
    }
    .expect("sampling from a census-built setup cannot fail");
    let input = match strategy {
        SamplingStrategy::House => sample
            .to_stratified_input_uniform(&setup.dataset.relation)
            .expect("sample is consistent"),
        _ => sample
            .to_stratified_input(&setup.dataset.relation)
            .expect("sample is consistent"),
    };
    match rewrite {
        RewriteChoice::Integrated => Box::new(Integrated::build(&input).expect("valid input")),
        RewriteChoice::NestedIntegrated => {
            Box::new(NestedIntegrated::build(&input).expect("valid input"))
        }
        RewriteChoice::Normalized => Box::new(Normalized::build(&input).expect("valid input")),
        RewriteChoice::KeyNormalized => {
            Box::new(KeyNormalized::build(&input).expect("valid input"))
        }
    }
}

/// Accuracy of one strategy on one query set.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyResult {
    /// Mean percentage error (the paper's reported metric: per-group mean
    /// for `Q_{g2}`/`Q_{g3}`, per-query mean for the `Q_{g0}` set).
    pub mean_error_pct: f64,
    /// Maximum error (ε∞ for group-bys; worst query for `Q_{g0}`).
    pub max_error_pct: f64,
}

/// Measure a strategy's accuracy on a query set, averaged over
/// `trials` independent samples (seeds `seed_base..seed_base+trials`).
pub fn accuracy_for_strategy(
    setup: &ExperimentSetup,
    strategy: SamplingStrategy,
    set: QuerySet,
    sample_fraction: f64,
    trials: u64,
    seed_base: u64,
) -> AccuracyResult {
    let queries: Vec<&GroupByQuery> = match set {
        QuerySet::Qg0 => setup.qg0.iter().collect(),
        QuerySet::Qg2 => vec![&setup.qg2],
        QuerySet::Qg3 => vec![&setup.qg3],
    };
    let exact: Vec<QueryResult> = queries
        .iter()
        .map(|q| execute_exact(&setup.dataset.relation, q).expect("exact execution"))
        .collect();

    // Trials are independent — fan them out across threads (each draws its
    // own sample with a distinct seed and replays the query set).
    let per_trial = |t: u64| -> (f64, f64) {
        let plan = build_plan(
            setup,
            strategy,
            RewriteChoice::Integrated,
            sample_fraction,
            seed_base + t,
        );
        match set {
            QuerySet::Qg0 => {
                // Mean over the 20 queries of each query's single-group error.
                let mut errs = Vec::with_capacity(queries.len());
                for (q, ex) in queries.iter().zip(&exact) {
                    let approx = plan.execute(q).expect("plan execution");
                    let report = compare_results(ex, &approx, 0, 100.0);
                    errs.push(report.l1());
                }
                let mean = errs.iter().sum::<f64>() / errs.len() as f64;
                let max = errs.iter().copied().fold(0.0, f64::max);
                (mean, max)
            }
            QuerySet::Qg2 | QuerySet::Qg3 => {
                let approx = plan.execute(queries[0]).expect("plan execution");
                let report = compare_results(&exact[0], &approx, 0, 100.0);
                (report.l1(), report.l_inf())
            }
        }
    };
    let results: Vec<(f64, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..trials)
            .map(|t| scope.spawn(move |_| per_trial(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    let (mean_sum, max_sum) = results
        .iter()
        .fold((0.0, 0.0), |(m, x), &(tm, tx)| (m + tm, x + tx));
    AccuracyResult {
        mean_error_pct: mean_sum / trials as f64,
        max_error_pct: max_sum / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> ExperimentSetup {
        ExperimentSetup::new(GeneratorConfig {
            table_size: 30_000,
            num_groups: 27,
            group_skew: 1.5,
            agg_skew: 0.86,
            seed: 123,
        })
    }

    #[test]
    fn setup_builds_queries_and_census() {
        let s = small_setup();
        assert_eq!(s.qg0.len(), 20);
        assert_eq!(s.census.group_count(), 27);
        assert_eq!(s.qg2.grouping.len(), 2);
        assert_eq!(s.qg3.grouping.len(), 3);
    }

    #[test]
    fn plans_build_for_all_strategies() {
        let s = small_setup();
        for strategy in SamplingStrategy::all() {
            let plan = build_plan(&s, strategy, RewriteChoice::Integrated, 0.07, 1);
            let r = plan.execute(&s.qg2).unwrap();
            assert!(r.group_count() > 0, "{}", strategy.name());
        }
    }

    #[test]
    fn accuracy_is_finite_and_ordered_sensibly() {
        let s = small_setup();
        // Senate should beat House on the finest grouping under skew.
        let house = accuracy_for_strategy(&s, SamplingStrategy::House, QuerySet::Qg3, 0.07, 3, 10);
        let senate =
            accuracy_for_strategy(&s, SamplingStrategy::Senate, QuerySet::Qg3, 0.07, 3, 10);
        assert!(house.mean_error_pct.is_finite());
        assert!(senate.mean_error_pct.is_finite());
        assert!(
            senate.mean_error_pct < house.mean_error_pct,
            "senate {} vs house {}",
            senate.mean_error_pct,
            house.mean_error_pct
        );
        assert!(senate.max_error_pct >= senate.mean_error_pct);
    }
}
